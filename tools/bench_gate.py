#!/usr/bin/env python3
"""Benchmark regression gate.

Runs the SEARCH-scalability bench, the E16 adaptive-strategy bench, the
E17 sharded-dispatch scaling bench, and the E18 batched-ENTER bench
(virtual-time: deterministic, exact, host-independent) plus the
real-hardware overhead microbench (informational only: wall-clock,
noisy), and compares the gated metrics against the committed baselines
(BENCH_search.json, BENCH_adaptive.json, BENCH_shard.json,
BENCH_enter.json).  bench_adaptive, bench_shard_scale and
bench_enter_batch additionally enforce their own acceptance thresholds;
a violation fails the gate even when every baseline delta is within
tolerance.

  tools/bench_gate.py                         # run, write, compare
  tools/bench_gate.py --update-baseline       # refresh the baseline
  tools/bench_gate.py --max-procs 4 --skip-gbench   # quick smoke

Only metrics with "gate": true participate in the comparison; all of them
come from the vtime engine, whose virtual-cycle makespans are bit-identical
on any machine, so a >tolerance delta is a real code regression, not noise.
See docs/benchmarking.md for the schema and the refresh workflow.
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA = "selfsched-bench/v1"


def run_search_bench(build_dir, max_procs, tmp_path):
    exe = os.path.join(build_dir, "bench", "bench_search_scale")
    if not os.path.exists(exe):
        sys.exit(f"bench_gate: {exe} not built (cmake --build {build_dir})")
    subprocess.run([exe, "--json", tmp_path, "--max-procs", str(max_procs)],
                   check=True, stdout=subprocess.DEVNULL)
    with open(tmp_path) as f:
        data = json.load(f)
    os.unlink(tmp_path)
    return data["metrics"]


def run_adaptive_bench(build_dir, tmp_path):
    """E16 adaptive-vs-static portfolio sweeps (bench_adaptive): vtime,
    deterministic, gated against BENCH_adaptive.json.  The bench enforces
    its own acceptance thresholds (within 10% of best static, >=1.3x over
    worst, bit-identical replay) and exits nonzero on violation — surface
    that as a gate failure, not just a baseline delta."""
    exe = os.path.join(build_dir, "bench", "bench_adaptive")
    if not os.path.exists(exe):
        sys.exit(f"bench_gate: {exe} not built (cmake --build {build_dir})")
    proc = subprocess.run([exe, "--json", tmp_path],
                          capture_output=True, text=True)
    accept_ok = proc.returncode == 0
    if not accept_ok:
        for line in proc.stdout.splitlines():
            if "ACCEPTANCE FAIL" in line:
                print(f"bench_gate: {line}")
    with open(tmp_path) as f:
        data = json.load(f)
    os.unlink(tmp_path)
    return data["metrics"], accept_ok


def run_shard_bench(build_dir, tmp_path):
    """E17 sharded-vs-flat index dispatch sweep (bench_shard_scale): vtime,
    deterministic, gated against BENCH_shard.json.  The bench enforces its
    own acceptance thresholds (G=4 >= 1.3x over flat at P=8 on the
    short-instance churn sweep, G=1 bit-equal to the flat path) and exits
    nonzero on violation — surface that as a gate failure too."""
    exe = os.path.join(build_dir, "bench", "bench_shard_scale")
    if not os.path.exists(exe):
        sys.exit(f"bench_gate: {exe} not built (cmake --build {build_dir})")
    proc = subprocess.run([exe, "--json", tmp_path],
                          capture_output=True, text=True)
    accept_ok = proc.returncode == 0
    if not accept_ok:
        for line in proc.stdout.splitlines():
            if "ACCEPTANCE FAIL" in line:
                print(f"bench_gate: {line}")
    with open(tmp_path) as f:
        data = json.load(f)
    os.unlink(tmp_path)
    return data["metrics"], accept_ok


def run_enter_bench(build_dir, tmp_path):
    """E18 batched-ENTER + sharded-arena sweep (bench_enter_batch): vtime,
    deterministic, gated against BENCH_enter.json.  The bench enforces its
    own acceptance thresholds (batched+G8 >= 1.25x over the seed path at
    P=8 m=256 on the wave-churn sweep, enter_batch=false bit-equal to the
    default path) and exits nonzero on violation — surface that as a gate
    failure too."""
    exe = os.path.join(build_dir, "bench", "bench_enter_batch")
    if not os.path.exists(exe):
        sys.exit(f"bench_gate: {exe} not built (cmake --build {build_dir})")
    proc = subprocess.run([exe, "--json", tmp_path],
                          capture_output=True, text=True)
    accept_ok = proc.returncode == 0
    if not accept_ok:
        for line in proc.stdout.splitlines():
            if "ACCEPTANCE FAIL" in line:
                print(f"bench_gate: {line}")
    with open(tmp_path) as f:
        data = json.load(f)
    os.unlink(tmp_path)
    return data["metrics"], accept_ok


def run_overhead_bench(build_dir):
    """google-benchmark wall-clock numbers: informational, never gated."""
    exe = os.path.join(build_dir, "bench", "bench_overheads")
    if not os.path.exists(exe):
        print(f"bench_gate: note: {exe} not built, skipping overhead bench")
        return []
    proc = subprocess.run(
        [exe, "--benchmark_format=json", "--benchmark_min_time=0.05"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print("bench_gate: note: bench_overheads failed, skipping:"
              f" {proc.stderr.strip()[:200]}")
        return []
    metrics = []
    for b in json.loads(proc.stdout).get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        metrics.append({
            "name": f"overheads/{b['name']}/real_time",
            "value": b["real_time"],
            "unit": b.get("time_unit", "ns"),
            "better": "less",
            "deterministic": False,
            "gate": False,
        })
    return metrics


def run_fault_overhead_bench(build_dir):
    """Fault-injection hook cost ratios (bench_fault_overhead): wall-clock,
    informational, never gated.  Parses the bench's table — the vs_bare
    column of the non-bare rows is the disabled-path overhead the ISSUE
    bounds at 2%."""
    exe = os.path.join(build_dir, "bench", "bench_fault_overhead")
    if not os.path.exists(exe):
        print(f"bench_gate: note: {exe} not built, skipping fault bench")
        return []
    proc = subprocess.run([exe], capture_output=True, text=True)
    if proc.returncode != 0:
        print("bench_gate: note: bench_fault_overhead failed, skipping:"
              f" {proc.stderr.strip()[:200]}")
        return []
    metrics = []
    for line in proc.stdout.splitlines():
        cells = [c.strip() for c in line.split("|")]
        if len(cells) != 4 or cells[0].startswith(("config", "bare")):
            continue
        try:
            ratio = float(cells[3])
        except ValueError:
            continue
        slug = cells[0].split(" (")[0].replace(" ", "_").replace(",", "")
        metrics.append({
            "name": f"fault_overhead/{slug}_vs_bare",
            "value": ratio,
            "unit": "ratio",
            "better": "less",
            "deterministic": False,
            "gate": False,
        })
    return metrics


def run_serve_bench(build_dir, tmp_path):
    """Resident-service latency/throughput (bench_serve, E15): wall-clock
    and host-load sensitive, informational only — every row arrives with
    gate:false and is never compared against the baseline."""
    exe = os.path.join(build_dir, "bench", "bench_serve")
    if not os.path.exists(exe):
        print(f"bench_gate: note: {exe} not built, skipping serve bench")
        return []
    proc = subprocess.run([exe, "--json", tmp_path, "--programs", "16",
                           "--iters", "600"],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        print("bench_gate: note: bench_serve failed, skipping:"
              f" {proc.stderr.strip()[:200]}")
        return []
    with open(tmp_path) as f:
        data = json.load(f)
    os.unlink(tmp_path)
    return data["metrics"]


def compare(baseline, current, tolerance):
    """Return (regressions, improvements, compared, only_base, only_cur,
    malformed) over gated metrics.  A metric missing "value"/"better" lands
    in `malformed` by name instead of raising KeyError mid-comparison."""
    base = {m.get("name", "<unnamed>"): m
            for m in baseline.get("metrics", []) if m.get("gate")}
    cur = {m.get("name", "<unnamed>"): m
           for m in current.get("metrics", []) if m.get("gate")}
    regressions, improvements, malformed, compared = [], [], [], 0
    for name in sorted(base.keys() & cur.keys()):
        old, new = base[name], cur[name]
        missing = [k for k in ("value", "better") if k not in old]
        missing += [k for k in ("value",) if k not in new]
        if missing:
            malformed.append((name, sorted(set(missing))))
            continue
        compared += 1
        if old["value"] == 0:
            continue
        ratio = new["value"] / old["value"]
        # "less" metrics regress upward, "more" metrics regress downward.
        delta = ratio - 1.0 if old["better"] == "less" else 1.0 - ratio
        entry = (name, old["value"], new["value"], delta)
        if delta > tolerance:
            regressions.append(entry)
        elif delta < -tolerance:
            improvements.append(entry)
    only_base = sorted(base.keys() - cur.keys())
    only_cur = sorted(cur.keys() - base.keys())
    return regressions, improvements, compared, only_base, only_cur, malformed


def evaluate(baseline, current, tolerance, allow_missing=False):
    """Apply the gate policy; returns (ok, lines).

    A gated baseline metric absent from a fresh run at the SAME max_procs
    is a failure with the missing names spelled out — a silently shrinking
    bench would otherwise pass the gate forever.  A shorter sweep
    (different max_procs) stays a note, as does --allow-missing.
    """
    regs, imps, compared, only_base, only_cur, malformed = compare(
        baseline, current, tolerance)
    lines = [f"bench_gate: compared {compared} gated metrics "
             f"(tolerance {tolerance:.0%})"]
    ok = True
    if malformed:
        for name, keys in malformed:
            lines.append(f"  MALFORMED {name}: missing {', '.join(keys)}")
        lines.append(f"bench_gate: FAIL — {len(malformed)} metric(s) "
                     "malformed; refresh with --update-baseline")
        ok = False
    if only_base:
        names = ", ".join(only_base[:5]) + (", ..." if len(only_base) > 5
                                            else "")
        if baseline.get("max_procs") != current.get("max_procs"):
            lines.append(f"bench_gate: note: {len(only_base)} baseline "
                         f"metrics not in this run ({names}) — smoke sweep?")
        elif allow_missing:
            lines.append(f"bench_gate: note: {len(only_base)} baseline "
                         f"metrics not in this run ({names}) — waived by "
                         "--allow-missing")
        else:
            lines.append(f"bench_gate: FAIL — {len(only_base)} gated "
                         f"baseline metric(s) missing from this run: {names}")
            lines.append("  (sweep matches the baseline's max_procs, so the "
                         "bench lost coverage; --allow-missing waives)")
            ok = False
    if only_cur:
        lines.append(f"bench_gate: note: {len(only_cur)} new metrics not in "
                     f"the baseline (first: {only_cur[0]}) — refresh the "
                     "baseline")
    for name, old, new, delta in imps:
        lines.append(f"  IMPROVED  {name}: {old:g} -> {new:g} ({delta:+.1%})")
    for name, old, new, delta in regs:
        lines.append(f"  REGRESSED {name}: {old:g} -> {new:g} ({delta:+.1%})")
    if regs:
        lines.append(f"bench_gate: FAIL — {len(regs)} gated metrics "
                     f"regressed beyond {tolerance:.0%}")
        ok = False
    if ok:
        lines.append("bench_gate: OK")
    return ok, lines


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default="BENCH_search.json",
                    help="committed baseline to compare against")
    ap.add_argument("--adaptive-baseline", default="BENCH_adaptive.json",
                    help="committed baseline for the E16 adaptive bench")
    ap.add_argument("--shard-baseline", default="BENCH_shard.json",
                    help="committed baseline for the E17 shard bench")
    ap.add_argument("--enter-baseline", default="BENCH_enter.json",
                    help="committed baseline for the E18 batched-ENTER "
                         "bench")
    ap.add_argument("--out", default=None,
                    help="write the fresh results here "
                         "(default: BENCH_search.new.json)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression on gated metrics")
    ap.add_argument("--max-procs", type=int, default=8,
                    help="cap of the simulated-processor sweep; must match "
                         "the baseline's for a full comparison")
    ap.add_argument("--update-baseline", action="store_true",
                    help="overwrite --baseline with fresh results and exit")
    ap.add_argument("--skip-gbench", action="store_true",
                    help="skip the wall-clock overhead bench (informational "
                         "metrics only)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="downgrade gated baseline metrics missing from a "
                         "same-max-procs run from failure to note")
    args = ap.parse_args()

    metrics = run_search_bench(args.build_dir, args.max_procs,
                               os.path.join(args.build_dir,
                                            "bench_search_tmp.json"))
    ad_metrics, ad_accept_ok = run_adaptive_bench(
        args.build_dir,
        os.path.join(args.build_dir, "bench_adaptive_tmp.json"))
    sh_metrics, sh_accept_ok = run_shard_bench(
        args.build_dir,
        os.path.join(args.build_dir, "bench_shard_tmp.json"))
    en_metrics, en_accept_ok = run_enter_bench(
        args.build_dir,
        os.path.join(args.build_dir, "bench_enter_tmp.json"))
    if not args.skip_gbench:
        metrics += run_overhead_bench(args.build_dir)
        metrics += run_fault_overhead_bench(args.build_dir)
        metrics += run_serve_bench(args.build_dir,
                                   os.path.join(args.build_dir,
                                                "bench_serve_tmp.json"))

    current = {"schema": SCHEMA, "max_procs": args.max_procs,
               "metrics": metrics}
    # The adaptive, shard and enter benches always sweep at P=8,
    # independent of --max-procs.
    ad_current = {"schema": SCHEMA, "max_procs": 8, "metrics": ad_metrics}
    sh_current = {"schema": SCHEMA, "max_procs": 8, "metrics": sh_metrics}
    en_current = {"schema": SCHEMA, "max_procs": 8, "metrics": en_metrics}

    if args.update_baseline:
        # The committed baselines must be machine-independent: keep only
        # the deterministic (vtime) metrics, never wall-clock ones.
        for path, cur in ((args.baseline, current),
                          (args.adaptive_baseline, ad_current),
                          (args.shard_baseline, sh_current),
                          (args.enter_baseline, en_current)):
            kept = [m for m in cur["metrics"] if m["deterministic"]]
            with open(path, "w") as f:
                json.dump({"schema": SCHEMA,
                           "max_procs": cur["max_procs"],
                           "metrics": kept}, f, indent=1)
                f.write("\n")
            gated = sum(1 for m in kept if m["gate"])
            print(f"bench_gate: wrote {path} "
                  f"({len(kept)} metrics, {gated} gated)")
        return 0 if ad_accept_ok and sh_accept_ok and en_accept_ok else 1

    out = args.out or "BENCH_search.new.json"
    with open(out, "w") as f:
        json.dump(current, f, indent=1)
        f.write("\n")
    print(f"bench_gate: wrote {out} ({len(metrics)} metrics)")

    ok = True
    for path, cur, tag in ((args.baseline, current, "search"),
                           (args.adaptive_baseline, ad_current, "adaptive"),
                           (args.shard_baseline, sh_current, "shard"),
                           (args.enter_baseline, en_current, "enter")):
        if not os.path.exists(path):
            sys.exit(f"bench_gate: baseline {path} not found — run "
                     "with --update-baseline to create it")
        with open(path) as f:
            baseline = json.load(f)
        if baseline.get("schema") != SCHEMA:
            sys.exit(f"bench_gate: baseline schema "
                     f"{baseline.get('schema')!r} != {SCHEMA!r}; refresh "
                     "with --update-baseline")
        this_ok, lines = evaluate(baseline, cur, args.tolerance,
                                  args.allow_missing)
        print(f"bench_gate: [{tag}]")
        print("\n".join(lines))
        ok = ok and this_ok
    if not ad_accept_ok:
        print("bench_gate: FAIL — bench_adaptive acceptance thresholds "
              "violated (see ACCEPTANCE FAIL lines above)")
        ok = False
    if not sh_accept_ok:
        print("bench_gate: FAIL — bench_shard_scale acceptance thresholds "
              "violated (see ACCEPTANCE FAIL lines above)")
        ok = False
    if not en_accept_ok:
        print("bench_gate: FAIL — bench_enter_batch acceptance thresholds "
              "violated (see ACCEPTANCE FAIL lines above)")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
