#!/usr/bin/env bash
# Repo verification: the tier-1 build+test pass (ROADMAP.md), then a
# ThreadSanitizer build of the threaded-scheduler tests to catch data races
# the plain build can't see.
#
#   tools/check.sh            # tier-1 + TSan
#   tools/check.sh --fast     # tier-1 only
#   tools/check.sh --explore  # tier-1 + TSan + schedule-sweep fuzz smoke
#
# Honors CMAKE_BUILD_PARALLEL_LEVEL for the build/test job count.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${CMAKE_BUILD_PARALLEL_LEVEL:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}"

FAST=0
EXPLORE=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --explore) EXPLORE=1 ;;
    *) echo "usage: tools/check.sh [--fast] [--explore]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$EXPLORE" == 1 ]]; then
  echo "== explore: schedule-sweep differential fuzz smoke =="
  ./build/tools/selfsched-fuzz --seeds 1:100 --schedules 4 --quiet \
      --engine vtime
  ./build/tools/selfsched-fuzz --seeds 1:50 --schedules 3 --controller pct \
      --quiet --engine vtime
fi

if [[ "$FAST" == 1 ]]; then
  echo "== OK (tier-1 only) =="
  exit 0
fi

echo "== TSan: threaded scheduler tests =="
cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target test_scheduler_threads
./build-tsan/tests/test_scheduler_threads

echo "== OK =="
