#!/usr/bin/env bash
# Repo verification: the tier-1 build+test pass (ROADMAP.md), then a
# ThreadSanitizer build of the threaded-scheduler tests to catch data races
# the plain build can't see.
#
#   tools/check.sh            # tier-1 + TSan
#   tools/check.sh --fast     # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--fast" ]]; then
  echo "== OK (tier-1 only) =="
  exit 0
fi

echo "== TSan: threaded scheduler tests =="
cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target test_scheduler_threads
./build-tsan/tests/test_scheduler_threads

echo "== OK =="
