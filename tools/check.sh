#!/usr/bin/env bash
# Repo verification: the tier-1 build+test pass (ROADMAP.md), then a
# ThreadSanitizer build of the threaded-scheduler tests to catch data races
# the plain build can't see.
#
#   tools/check.sh                 # tier-1 + TSan
#   tools/check.sh --fast          # tier-1 only
#   tools/check.sh --explore       # tier-1 + TSan + schedule-sweep fuzz smoke
#   tools/check.sh --audit         # unit+explore tiers with the invariant
#                                  # auditor live (SELFSCHED_AUDIT=1 env:
#                                  # every run is audited, violations abort),
#                                  # then an ASan build of the same tiers
#   tools/check.sh --faults        # fault-tolerance suite (test_fault +
#                                  # cancellation-adjacent tests) under TSan,
#                                  # then audited under ASan — the
#                                  # cancellation/drain paths are exactly
#                                  # where races and leaks would hide
#   tools/check.sh --adaptive      # adaptive-scheduling conformance suite
#                                  # (ISSUE 7): the strategy closed-form
#                                  # oracles, the adaptive tuner tests, the
#                                  # Eq. 7 model edge cases and the
#                                  # stall-under-adaptation fault test under
#                                  # TSan (the threads feedback path), then
#                                  # audited under ASan, then the E16
#                                  # acceptance thresholds (bench_adaptive)
#   tools/check.sh --shard         # sharded-dispatch suite (ISSUE 8): the
#                                  # shard-math oracles, the sharded-vs-flat
#                                  # differential matrix, the shard auditor
#                                  # rules and the sharded fault tests under
#                                  # TSan (threads-engine shard counters),
#                                  # then audited under ASan, then the E17
#                                  # acceptance thresholds (bench_shard_scale)
#   tools/check.sh --hotpath       # instance-churn hot-path suite (ISSUE
#                                  # 9): the batched-vs-unbatched
#                                  # differential matrix, the sharded-arena
#                                  # units and the batch auditor rules under
#                                  # TSan (batch flushes racing searchers,
#                                  # allocated() sampling), then audited
#                                  # under ASan, then the E18 acceptance
#                                  # thresholds (bench_enter_batch)
#   tools/check.sh --serve         # resident-service suite: test_serve +
#                                  # the full serve-stress run (16
#                                  # submitters, 224 audited programs, P=8,
#                                  # oracle-verified, fairness asserted)
#                                  # under TSan, then under ASan with the
#                                  # fairness report written to
#                                  # serve_fairness.json
#   tools/check.sh --resilience    # self-healing serve suite (ISSUE 10):
#                                  # the ServeResilience/FaultWatchdog/
#                                  # Backoff-jitter tests plus the full
#                                  # serve-chaos run (224 mixed-priority
#                                  # programs under seeded body-throw +
#                                  # worker-stall injection, all audited)
#                                  # under TSan, then the audited ASan
#                                  # chaos run with the recovery report
#                                  # written to serve_chaos.json, then the
#                                  # deterministic replay check
#   tools/check.sh --label unit    # restrict ctest to one tier
#                                  # (unit | stress | explore; repeatable
#                                  #  via ctest's -L regex semantics)
#
# Honors CMAKE_BUILD_PARALLEL_LEVEL for the build/test job count.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${CMAKE_BUILD_PARALLEL_LEVEL:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}"

FAST=0
EXPLORE=0
AUDIT=0
FAULTS=0
SERVE=0
RESILIENCE=0
ADAPTIVE=0
SHARD=0
HOTPATH=0
LABEL=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) FAST=1; shift ;;
    --explore) EXPLORE=1; shift ;;
    --audit) AUDIT=1; shift ;;
    --faults) FAULTS=1; shift ;;
    --serve) SERVE=1; shift ;;
    --resilience) RESILIENCE=1; shift ;;
    --adaptive) ADAPTIVE=1; shift ;;
    --shard) SHARD=1; shift ;;
    --hotpath) HOTPATH=1; shift ;;
    --label) LABEL="${2:?--label needs an argument}"; shift 2 ;;
    *) echo "usage: tools/check.sh [--fast] [--explore] [--audit]" \
            "[--faults] [--serve] [--resilience] [--adaptive] [--shard]" \
            "[--hotpath] [--label TIER]" >&2
       exit 2 ;;
  esac
done

# The fault-suite test filter: the fault tests themselves plus the suites
# that exercise cancellation-adjacent machinery (teardown spins, Doacross
# waits, the thread team's exception path).
FAULT_TESTS='FaultBody|FaultInject|FaultDeadline|FaultDrain|FaultReplay|FaultHooks|FaultDoacross|FaultWatchdog|AuditCancel|ThreadTeam'

# The resilience filter: the serve recovery state machine (retry /
# quarantine / shed), the stall watchdog, and the seeded-jitter backoff
# the retry scheduler draws from.
RESILIENCE_TESTS='ServeResilience|FaultWatchdog|Backoff|Serve\.'

# The adaptive-conformance filter: the portfolio's closed-form oracle units
# (Strategy*), the tuner suite (Adaptive*/PortfolioSweep), the completion-
# time model edge cases, and the stall-under-adaptation fault test.
ADAPTIVE_TESTS='Strategy|Adaptive|PortfolioSweep|CompletionModel|FaultAdaptive'

# The sharded-dispatch filter: every suite name carries "Shard" — the
# shard-math/ICB units (ShardMath/Shard.*), the differential matrix and
# replay/counter/topology suites (Shard* in test_shard), the auditor rules
# (AuditShard) and the sharded cancellation/deadline tests (FaultShard).
SHARD_TESTS='Shard'

# The hot-path filter: the batched-ENTER differential/replay/counter
# suites and sharded-arena units (Hotpath*/EnterBatch* in test_hotpath)
# plus the batch conservation rules in the auditor (AuditBatch).
HOTPATH_TESTS='Hotpath|EnterBatch|AuditBatch'

if [[ "$HOTPATH" == 1 ]]; then
  echo "== hotpath: TSan build, instance-churn suite =="
  cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target test_hotpath \
      test_runtime_units test_audit
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" -R "$HOTPATH_TESTS")
  echo "== hotpath: ASan build, audited instance-churn suite =="
  cmake -B build-asan -S . -DSELFSCHED_SANITIZE=address
  cmake --build build-asan -j "$JOBS" --target test_hotpath \
      test_runtime_units test_audit bench_enter_batch
  (cd build-asan && SELFSCHED_AUDIT=1 ctest --output-on-failure -j "$JOBS" \
      -R "$HOTPATH_TESTS")
  echo "== hotpath: E18 acceptance thresholds =="
  ./build-asan/bench/bench_enter_batch > /dev/null
  echo "== OK (hotpath) =="
  exit 0
fi

if [[ "$SHARD" == 1 ]]; then
  echo "== shard: TSan build, sharded-dispatch suite =="
  cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target test_shard \
      test_runtime_units test_audit test_fault
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" -R "$SHARD_TESTS")
  echo "== shard: ASan build, audited sharded-dispatch suite =="
  cmake -B build-asan -S . -DSELFSCHED_SANITIZE=address
  cmake --build build-asan -j "$JOBS" --target test_shard \
      test_runtime_units test_audit test_fault bench_shard_scale
  (cd build-asan && SELFSCHED_AUDIT=1 ctest --output-on-failure -j "$JOBS" \
      -R "$SHARD_TESTS")
  echo "== shard: E17 acceptance thresholds =="
  ./build-asan/bench/bench_shard_scale > /dev/null
  echo "== OK (shard) =="
  exit 0
fi

if [[ "$ADAPTIVE" == 1 ]]; then
  echo "== adaptive: TSan build, strategy-conformance suite =="
  cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target test_adaptive \
      test_runtime_units test_analysis test_fault
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" \
      -R "$ADAPTIVE_TESTS")
  echo "== adaptive: ASan build, audited conformance suite =="
  cmake -B build-asan -S . -DSELFSCHED_SANITIZE=address
  cmake --build build-asan -j "$JOBS" --target test_adaptive \
      test_runtime_units test_analysis test_fault bench_adaptive
  (cd build-asan && SELFSCHED_AUDIT=1 ctest --output-on-failure -j "$JOBS" \
      -R "$ADAPTIVE_TESTS")
  echo "== adaptive: E16 acceptance thresholds =="
  ./build-asan/bench/bench_adaptive > /dev/null
  echo "== OK (adaptive) =="
  exit 0
fi

if [[ "$FAULTS" == 1 ]]; then
  echo "== faults: TSan build, fault-tolerance suite =="
  cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target test_fault test_thread_team \
      test_audit
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" -R "$FAULT_TESTS")
  echo "== faults: ASan build, audited fault-tolerance suite =="
  cmake -B build-asan -S . -DSELFSCHED_SANITIZE=address
  cmake --build build-asan -j "$JOBS" --target test_fault test_thread_team \
      test_audit
  (cd build-asan && SELFSCHED_AUDIT=1 ctest --output-on-failure -j "$JOBS" \
      -R "$FAULT_TESTS")
  echo "== OK (faults) =="
  exit 0
fi

if [[ "$SERVE" == 1 ]]; then
  # serve-stress sets opts.audit on every submission, so both sanitizer
  # passes run fully audited; the stress itself asserts oracle equality and
  # the within-tier granted-cycle fairness bound.
  echo "== serve: TSan build, service suite + stress =="
  cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target test_serve serve-stress
  ./build-tsan/tests/test_serve
  ./build-tsan/tools/serve-stress
  echo "== serve: ASan build, audited stress + fairness report =="
  cmake -B build-asan -S . -DSELFSCHED_SANITIZE=address
  cmake --build build-asan -j "$JOBS" --target test_serve serve-stress
  ./build-asan/tests/test_serve
  ./build-asan/tools/serve-stress --json serve_fairness.json
  echo "== OK (serve) =="
  exit 0
fi

if [[ "$RESILIENCE" == 1 ]]; then
  # serve-chaos arms every submission with audit on, so both sanitizer
  # passes run fully audited; the harness itself asserts terminal states,
  # oracle-exact retries, quarantine/shed engagement and healthy-tenant
  # fairness.
  echo "== resilience: TSan build, recovery suite + chaos =="
  cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target test_serve test_fault \
      test_sync serve-chaos
  (cd build-tsan && ctest --output-on-failure -j "$JOBS" \
      -R "$RESILIENCE_TESTS")
  ./build-tsan/tools/serve-chaos
  echo "== resilience: ASan build, audited chaos + recovery report =="
  cmake -B build-asan -S . -DSELFSCHED_SANITIZE=address
  cmake --build build-asan -j "$JOBS" --target test_serve test_fault \
      test_sync serve-chaos
  (cd build-asan && SELFSCHED_AUDIT=1 ctest --output-on-failure -j "$JOBS" \
      -R "$RESILIENCE_TESTS")
  ./build-asan/tools/serve-chaos --json serve_chaos.json
  echo "== resilience: deterministic chaos replay =="
  ./build-asan/tools/serve-chaos --deterministic --replay-check
  echo "== OK (resilience) =="
  exit 0
fi

if [[ "$AUDIT" == 1 ]]; then
  echo "== audit: unit+explore tiers with SELFSCHED_AUDIT=1 =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && SELFSCHED_AUDIT=1 ctest --output-on-failure -j "$JOBS" \
      -L 'unit|explore')
  echo "== audit: ASan build, audited unit tier =="
  cmake -B build-asan -S . -DSELFSCHED_SANITIZE=address
  cmake --build build-asan -j "$JOBS"
  (cd build-asan && SELFSCHED_AUDIT=1 ctest --output-on-failure -j "$JOBS" \
      -L unit)
  echo "== OK (audit) =="
  exit 0
fi

CTEST_ARGS=(--output-on-failure -j "$JOBS")
if [[ -n "$LABEL" ]]; then
  CTEST_ARGS+=(-L "$LABEL")
fi

echo "== tier-1: build + test suite${LABEL:+ (label: $LABEL)} =="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest "${CTEST_ARGS[@]}")

if [[ "$EXPLORE" == 1 ]]; then
  echo "== explore: schedule-sweep differential fuzz smoke =="
  ./build/tools/selfsched-fuzz --seeds 1:100 --schedules 4 --quiet \
      --engine vtime
  ./build/tools/selfsched-fuzz --seeds 1:50 --schedules 3 --controller pct \
      --quiet --engine vtime
fi

if [[ "$FAST" == 1 ]]; then
  echo "== OK (tier-1 only) =="
  exit 0
fi

echo "== TSan: threaded scheduler tests =="
cmake -B build-tsan -S . -DSELFSCHED_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target test_scheduler_threads
./build-tsan/tests/test_scheduler_threads

echo "== OK =="
