// selfsched-fuzz: differential fuzzing of the two-level scheduler.
//
//   selfsched-fuzz [--seeds LO:HI] [--engine vtime|threads|both]
//                  [--max-procs P] [--depth D] [--quiet]
//                  [--schedules N] [--controller canonical|shuffle|pct]
//                  [--jitter J] [--repro FILE] [--replay FILE]
//
// For each seed, generates a random general parallel nested loop, derives a
// processor count and strategy from the seed, runs it serially and under
// the scheduler, and compares iteration multisets and bookkeeping
// invariants (runtime/verify.hpp).  Exit status 0 iff every seed passes.
//
// Schedule exploration (vtime engine): --schedules N checks each program
// under N different tie-break schedules of the chosen --controller
// (seeded per schedule), multiplying the interleavings covered per seed.
// On the first failure, --repro FILE writes a replay file capturing the
// program seed, configuration, and the failing schedule's recorded
// decision trace; --replay FILE re-runs exactly that case (see
// docs/schedule-exploration.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/verify.hpp"
#include "vtime/schedule_ctrl.hpp"
#include "workloads/programs.hpp"

using namespace selfsched;

namespace {

runtime::Strategy strategy_for_seed(u64 seed) {
  switch (seed % 10) {
    case 0: return runtime::Strategy::self();
    case 1:
      return runtime::Strategy::chunked(static_cast<i64>(seed % 7) + 2);
    case 2: return runtime::Strategy::gss();
    case 3: return runtime::Strategy::factoring();
    case 4: return runtime::Strategy::trapezoid();
    case 5: return runtime::Strategy::factoring2();
    case 6:
      // Derive a packed weight word from the seed; zero bytes read as 1.
      return runtime::Strategy::weighted_factoring(seed * 0x9e3779b97f4a7c15ULL);
    case 7: return runtime::Strategy::trapezoid_tuned();
    case 8: return runtime::Strategy::random_steal(seed | 1);
    default: return runtime::Strategy::adaptive();
  }
}

/// One fuzz case, fully determined: everything needed to rebuild the
/// program and scheduler configuration without re-deriving from CLI state.
struct FuzzCase {
  u64 program_seed = 0;
  u32 procs = 1;
  u32 depth = 4;
  u32 pool_shards = 1;
  u32 index_shards = 1;
  bool enter_batch = false;
  u32 icb_shards = 1;
  bool central_queue = false;
  u32 strategy_kind = 0;  // runtime::Strategy::Kind as u32
  i64 strategy_chunk = 1;
  u64 strategy_aux = 0;   // wf_weights / rs_seed, by kind
  bool threads_engine = false;
};

FuzzCase case_for_seed(u64 seed, u32 max_procs, u32 depth) {
  FuzzCase c;
  c.program_seed = seed;
  c.depth = depth;
  const runtime::Strategy s = strategy_for_seed(seed);
  c.strategy_kind = static_cast<u32>(s.kind);
  c.strategy_chunk = s.chunk;
  c.strategy_aux = s.wf_weights != 0 ? s.wf_weights : s.rs_seed;
  c.pool_shards = 1 + static_cast<u32>(seed % 3);
  c.index_shards = 1 + static_cast<u32>(seed % 4);
  c.enter_batch = seed % 2 == 1;
  c.icb_shards = 1 + static_cast<u32>(seed / 5 % 4);
  c.central_queue = seed % 7 == 0;
  c.procs = 1 + static_cast<u32>(seed % max_procs);
  return c;
}

runtime::SchedOptions options_for(const FuzzCase& c) {
  runtime::SchedOptions opts;
  opts.strategy.kind =
      static_cast<runtime::Strategy::Kind>(c.strategy_kind);
  opts.strategy.chunk = c.strategy_chunk;
  if (opts.strategy.kind == runtime::Strategy::Kind::kWeightedFactoring) {
    opts.strategy.wf_weights = c.strategy_aux;
  } else if (opts.strategy.kind == runtime::Strategy::Kind::kRandomSteal) {
    opts.strategy.rs_seed = c.strategy_aux != 0 ? c.strategy_aux : 1;
  }
  opts.pool_shards = c.pool_shards;
  opts.index_shards = c.index_shards;
  opts.enter_batch = c.enter_batch;
  opts.icb_shards = c.icb_shards;
  opts.central_queue = c.central_queue;
  return opts;
}

runtime::ProgramBuilder builder_for(const FuzzCase& c) {
  workloads::RandomProgramConfig cfg;
  cfg.max_depth = c.depth;
  return [seed = c.program_seed, cfg](const program::BodyFactory& bodies) {
    return workloads::random_program(seed, cfg, bodies);
  };
}

u64 parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

vtime::ReproFile repro_for(const FuzzCase& c,
                           const vtime::ScheduleSpec& failed) {
  vtime::ReproFile r;
  r.schedule = failed;
  auto put = [&r](const char* k, u64 v) {
    r.extra.emplace_back(k, std::to_string(v));
  };
  put("program_seed", c.program_seed);
  put("procs", c.procs);
  put("depth", c.depth);
  put("pool_shards", c.pool_shards);
  put("index_shards", c.index_shards);
  put("enter_batch", c.enter_batch ? 1 : 0);
  put("icb_shards", c.icb_shards);
  put("central_queue", c.central_queue ? 1 : 0);
  put("strategy_kind", c.strategy_kind);
  put("strategy_chunk", static_cast<u64>(c.strategy_chunk));
  put("strategy_aux", c.strategy_aux);
  put("engine", c.threads_engine ? 1 : 0);
  return r;
}

bool case_from_repro(const vtime::ReproFile& r, FuzzCase& c) {
  bool have_seed = false;
  for (const auto& [k, v] : r.extra) {
    if (k == "program_seed") {
      c.program_seed = parse_u64(v);
      have_seed = true;
    } else if (k == "procs") {
      c.procs = static_cast<u32>(parse_u64(v));
    } else if (k == "depth") {
      c.depth = static_cast<u32>(parse_u64(v));
    } else if (k == "pool_shards") {
      c.pool_shards = static_cast<u32>(parse_u64(v));
    } else if (k == "index_shards") {
      c.index_shards = static_cast<u32>(parse_u64(v));
    } else if (k == "enter_batch") {
      c.enter_batch = parse_u64(v) != 0;
    } else if (k == "icb_shards") {
      c.icb_shards = static_cast<u32>(parse_u64(v));
    } else if (k == "central_queue") {
      c.central_queue = parse_u64(v) != 0;
    } else if (k == "strategy_kind") {
      c.strategy_kind = static_cast<u32>(parse_u64(v));
    } else if (k == "strategy_chunk") {
      c.strategy_chunk = static_cast<i64>(parse_u64(v));
    } else if (k == "strategy_aux") {
      c.strategy_aux = parse_u64(v);
    } else if (k == "engine") {
      c.threads_engine = parse_u64(v) != 0;
    }
  }
  return have_seed && c.procs >= 1;
}

int run_replay(const std::string& path) {
  const auto repro = vtime::read_repro_file(path);
  if (!repro) {
    std::fprintf(stderr, "cannot read repro file %s\n", path.c_str());
    return 2;
  }
  FuzzCase c;
  if (!case_from_repro(*repro, c)) {
    std::fprintf(stderr, "repro file %s lacks program context\n",
                 path.c_str());
    return 2;
  }
  runtime::SchedOptions opts = options_for(c);
  opts.schedule = vtime::replay_of(repro->schedule);
  opts.record_schedule = true;
  const auto r = runtime::differential_check(
      builder_for(c), c.procs,
      c.threads_engine ? runtime::EngineKind::kThreads
                       : runtime::EngineKind::kVtime,
      opts);
  std::printf("replay seed=%llu procs=%u controller=%s decisions=%zu: %s\n",
              static_cast<unsigned long long>(c.program_seed), c.procs,
              vtime::controller_kind_name(repro->schedule.kind),
              repro->schedule.decisions.size(), r.ok ? "ok" : "FAIL");
  if (!r.ok) std::printf("%s", r.detail.c_str());
  return r.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  u64 lo = 1, hi = 200;
  std::string engine = "vtime";
  u32 max_procs = 9;
  u32 depth = 4;
  bool quiet = false;
  u32 schedules = 0;
  vtime::ControllerKind controller = vtime::ControllerKind::kSeededShuffle;
  Cycles jitter = 1;
  std::string repro_path;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      const std::string v = next();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--seeds expects LO:HI\n");
        return 2;
      }
      lo = std::strtoull(v.c_str(), nullptr, 10);
      hi = std::strtoull(v.c_str() + colon + 1, nullptr, 10);
    } else if (arg == "--engine") {
      engine = next();
    } else if (arg == "--max-procs") {
      max_procs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--depth") {
      depth = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--schedules") {
      schedules = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--controller") {
      const std::string v = next();
      const auto k = vtime::parse_controller_kind(v);
      if (!k || *k == vtime::ControllerKind::kReplay) {
        std::fprintf(stderr,
                     "--controller expects canonical|shuffle|pct\n");
        return 2;
      }
      controller = *k;
    } else if (arg == "--jitter") {
      jitter = static_cast<Cycles>(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--repro") {
      repro_path = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  if (!replay_path.empty()) return run_replay(replay_path);

  runtime::ScheduleSweep sweep;
  sweep.schedules = schedules;
  sweep.controller = controller;
  sweep.jitter = jitter;

  u64 failures = 0, runs = 0;
  bool repro_written = false;
  for (u64 seed = lo; seed <= hi; ++seed) {
    FuzzCase c = case_for_seed(seed, max_procs, depth);
    const runtime::SchedOptions opts = options_for(c);
    const auto builder = builder_for(c);
    for (const auto kind : {runtime::EngineKind::kVtime,
                            runtime::EngineKind::kThreads}) {
      if (kind == runtime::EngineKind::kVtime && engine == "threads") continue;
      if (kind == runtime::EngineKind::kThreads && engine == "vtime") continue;
      c.threads_engine = kind == runtime::EngineKind::kThreads;
      // Per-program sweep seeds: decorrelate schedules across fuzz seeds.
      sweep.base_seed = seed * 1009 + 1;
      ++runs;
      const auto r =
          runtime::differential_check(builder, c.procs, kind, opts, sweep);
      if (!r.ok) {
        ++failures;
        std::printf(
            "FAIL seed=%llu procs=%u strategy=%s engine=%s schedule=%u/%u\n%s",
            static_cast<unsigned long long>(seed), c.procs,
            opts.strategy.name(),
            c.threads_engine ? "threads" : "vtime", r.schedules_run,
            std::max<u32>(sweep.schedules, 1), r.detail.c_str());
        if (!repro_path.empty() && !repro_written &&
            kind == runtime::EngineKind::kVtime) {
          if (vtime::write_repro_file(repro_path,
                                      repro_for(c, r.failed_schedule))) {
            repro_written = true;
            std::printf("repro written to %s (run with --replay %s)\n",
                        repro_path.c_str(), repro_path.c_str());
          } else {
            std::fprintf(stderr, "cannot write repro file %s\n",
                         repro_path.c_str());
          }
        }
      } else if (!quiet) {
        std::printf("ok seed=%llu procs=%u iters=%llu schedules=%u\n",
                    static_cast<unsigned long long>(seed), c.procs,
                    static_cast<unsigned long long>(r.parallel_iterations),
                    r.schedules_run);
      }
    }
  }
  std::printf("%llu runs, %llu failures\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
