// selfsched-fuzz: differential fuzzing of the two-level scheduler.
//
//   selfsched-fuzz [--seeds LO:HI] [--engine vtime|threads|both]
//                  [--max-procs P] [--depth D] [--quiet]
//
// For each seed, generates a random general parallel nested loop, derives a
// processor count and strategy from the seed, runs it serially and under
// the scheduler, and compares iteration multisets and bookkeeping
// invariants (runtime/verify.hpp).  Exit status 0 iff every seed passes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/verify.hpp"
#include "workloads/programs.hpp"

using namespace selfsched;

int main(int argc, char** argv) {
  u64 lo = 1, hi = 200;
  std::string engine = "vtime";
  u32 max_procs = 9;
  u32 depth = 4;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      const std::string v = next();
      const auto colon = v.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--seeds expects LO:HI\n");
        return 2;
      }
      lo = std::strtoull(v.c_str(), nullptr, 10);
      hi = std::strtoull(v.c_str() + colon + 1, nullptr, 10);
    } else if (arg == "--engine") {
      engine = next();
    } else if (arg == "--max-procs") {
      max_procs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--depth") {
      depth = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  workloads::RandomProgramConfig cfg;
  cfg.max_depth = depth;

  u64 failures = 0, runs = 0;
  for (u64 seed = lo; seed <= hi; ++seed) {
    runtime::SchedOptions opts;
    switch (seed % 5) {
      case 0: opts.strategy = runtime::Strategy::self(); break;
      case 1:
        opts.strategy =
            runtime::Strategy::chunked(static_cast<i64>(seed % 7) + 2);
        break;
      case 2: opts.strategy = runtime::Strategy::gss(); break;
      case 3: opts.strategy = runtime::Strategy::factoring(); break;
      default: opts.strategy = runtime::Strategy::trapezoid(); break;
    }
    opts.pool_shards = 1 + static_cast<u32>(seed % 3);
    if (seed % 7 == 0) opts.central_queue = true;
    const u32 procs = 1 + static_cast<u32>(seed % max_procs);

    auto builder = [&](const program::BodyFactory& bodies) {
      return workloads::random_program(seed, cfg, bodies);
    };
    for (const auto kind : {runtime::EngineKind::kVtime,
                            runtime::EngineKind::kThreads}) {
      if (kind == runtime::EngineKind::kVtime && engine == "threads") continue;
      if (kind == runtime::EngineKind::kThreads && engine == "vtime") continue;
      ++runs;
      const auto r = runtime::differential_check(builder, procs, kind, opts);
      if (!r.ok) {
        ++failures;
        std::printf("FAIL seed=%llu procs=%u strategy=%s engine=%s\n%s",
                    static_cast<unsigned long long>(seed), procs,
                    opts.strategy.name(),
                    kind == runtime::EngineKind::kVtime ? "vtime" : "threads",
                    r.detail.c_str());
      } else if (!quiet) {
        std::printf("ok seed=%llu procs=%u iters=%llu\n",
                    static_cast<unsigned long long>(seed), procs,
                    static_cast<unsigned long long>(r.parallel_iterations));
      }
    }
  }
  std::printf("%llu runs, %llu failures\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
