// selfsched-run: command-line driver for the two-level self-scheduler.
//
//   selfsched-run [options] <program.loop>
//   selfsched-run --help
//
// Reads a loop nest in the mini-language (src/lang/parser.hpp), compiles it
// to the paper's DEPTH/BOUND/DESCRPT tables, and executes it on the chosen
// engine, printing the utilization/overhead report.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/sequential.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "program/instance_graph.hpp"
#include "runtime/fault.hpp"
#include "runtime/report.hpp"
#include "runtime/scheduler.hpp"
#include "trace/export.hpp"

using namespace selfsched;

namespace {

// `out` is stdout for --help (exit 0) and stderr on usage errors (exit 2),
// so piping the report never mixes in usage text.
void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options] <program.loop>\n"
      "\n"
      "engine and machine:\n"
      "  --engine vtime|threads   execution engine (default vtime)\n"
      "  --procs N                processors (default 8)\n"
      "  --costs cedar|cheap|expensive|numa[:G]\n"
      "                           vtime cost model (default cedar; numa = G\n"
      "                           topology groups, docs/sharding.md)\n"
      "\n"
      "scheduling:\n"
      "  --strategy self|chunk:K|gss|factoring|trapezoid|factoring2|\n"
      "             wfactoring[:HEXW]|tss2|randsteal[:SEED]|adaptive[:TAU]\n"
      "                           low-level Doall dispatch (default self)\n"
      "  --central-queue          single-list task pool (ablation)\n"
      "  --shards S               shards per loop list (default 1)\n"
      "  --index-shards G         per-instance index shards with home-first\n"
      "                           stealing (default 1 = the flat paper\n"
      "                           path; docs/sharding.md)\n"
      "  --enter-batch            batch sibling activations: one pool pass,\n"
      "                           one coalesced outstanding increment, one\n"
      "                           lock + SW publish per touched list\n"
      "                           (docs/hotpath.md)\n"
      "  --icb-shards G           ICB-pool freelist shards with home-first\n"
      "                           stealing (default 1 = single freelist)\n"
      "\n"
      "program:\n"
      "  --param NAME=VALUE       bind a named constant (repeatable)\n"
      "\n"
      "output:\n"
      "  --tables                 print the compiled DEPTH/BOUND/DESCRPT\n"
      "  --dot                    print the loop activation graph (GraphViz)\n"
      "  --instances              print the instance-level macro-dataflow\n"
      "                           graph (Fig. 4) and its T1/Tinf analysis\n"
      "  --emit                   reprint the parsed program (canonical\n"
      "                           mini-language source)\n"
      "  --gantt [WIDTH]          print the processor timeline (vtime)\n"
      "  --timeline-csv FILE      write the phase timeline as CSV (vtime)\n"
      "  --summary-csv FILE       append the run metrics as a CSV row\n"
      "  --json                   print the run metrics as one JSON object\n"
      "  --serial                 also run the serial oracle and report\n"
      "                           speedup against it\n"
      "\n"
      "robustness (docs/robustness.md):\n"
      "  --deadline-ms N          threads: cancel the run after N wall-clock\n"
      "                           milliseconds instead of hanging\n"
      "  --deadline-vcycles N     vtime: cancel after N virtual cycles\n"
      "                           (deterministic)\n"
      "  --on-body-error throw|return\n"
      "                           rethrow a contained body exception, or\n"
      "                           return with the failure record (default\n"
      "                           return)\n"
      "  --inject-throw LOOP:J    arm a body-throw fault at loop LOOP,\n"
      "                           iteration J (repeatable)\n"
      "  --inject-stall LOOP:J[:CYCLES]\n"
      "                           arm a worker stall there; CYCLES=0 wedges\n"
      "                           until cancellation or a deadline\n"
      "  A cancelled run prints its failure record and exits with code 3.\n"
      "\n"
      "tracing (docs/observability.md):\n"
      "  --trace-out FILE.json    record scheduler events and write a Chrome\n"
      "                           trace (open in Perfetto / about:tracing)\n"
      "  --events-csv FILE        record events and write them as CSV\n"
      "  --trace-ring N           per-worker event ring capacity (default %u)\n"
      "  --counters               print the metric counters (name=value)\n",
      argv0, runtime::SchedOptions{}.trace_ring_capacity);
}

/// "LOOP:J[:CYCLES]" → (loop, iteration, cycles); cycles left untouched when
/// the third field is absent.
bool parse_fault_point(const std::string& s, long long* loop, long long* j,
                       long long* cycles) {
  char* end = nullptr;
  *loop = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != ':') return false;
  const char* p = end + 1;
  *j = std::strtoll(p, &end, 10);
  if (end == p) return false;
  if (*end == ':') {
    p = end + 1;
    *cycles = std::strtoll(p, &end, 10);
    if (end == p || *cycles < 0) return false;
  }
  return *end == '\0';
}

bool parse_strategy(const std::string& s, runtime::Strategy* out) {
  if (s == "self") {
    *out = runtime::Strategy::self();
  } else if (s.rfind("chunk:", 0) == 0) {
    const long k = std::strtol(s.c_str() + 6, nullptr, 10);
    if (k < 1) return false;
    *out = runtime::Strategy::chunked(k);
  } else if (s == "gss") {
    *out = runtime::Strategy::gss();
  } else if (s == "factoring") {
    *out = runtime::Strategy::factoring();
  } else if (s == "trapezoid") {
    *out = runtime::Strategy::trapezoid();
  } else if (s == "factoring2") {
    *out = runtime::Strategy::factoring2();
  } else if (s.rfind("wfactoring:", 0) == 0) {
    // Packed per-worker weight bytes, hex (e.g. wfactoring:0x04020101).
    const u64 w = std::strtoull(s.c_str() + 11, nullptr, 0);
    *out = runtime::Strategy::weighted_factoring(w);
  } else if (s == "wfactoring") {
    *out = runtime::Strategy::weighted_factoring();
  } else if (s == "tss2") {
    *out = runtime::Strategy::trapezoid_tuned();
  } else if (s.rfind("randsteal:", 0) == 0) {
    const u64 seed = std::strtoull(s.c_str() + 10, nullptr, 0);
    *out = runtime::Strategy::random_steal(seed);
  } else if (s == "randsteal") {
    *out = runtime::Strategy::random_steal();
  } else if (s.rfind("adaptive:", 0) == 0) {
    const long tau = std::strtol(s.c_str() + 9, nullptr, 10);
    if (tau < 0) return false;
    *out = runtime::Strategy::adaptive(tau);
  } else if (s == "adaptive") {
    *out = runtime::Strategy::adaptive();
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = "vtime";
  std::string path;
  u32 procs = 8;
  bool show_tables = false, show_dot = false, run_serial = false;
  bool show_instances = false, emit_source = false;
  std::string timeline_csv, summary_csv, trace_out, events_csv;
  bool show_json = false, show_counters = false;
  bool gantt = false;
  u32 gantt_width = 100;
  runtime::SchedOptions opts;
  // The CLI default is kReturn so a failed run prints its structured record
  // (and embeds it in --json) instead of dying on an unwound exception;
  // --on-body-error throw restores library behavior.
  opts.on_body_error = runtime::OnBodyError::kReturn;
  fault::FaultPlan plan;
  lang::ParseOptions popts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], stdout);
      return 0;
    } else if (arg == "--engine") {
      engine = next();
    } else if (arg == "--procs") {
      procs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--costs") {
      const std::string c = next();
      if (c == "cedar") {
        opts.costs = vtime::CostModel::cedar();
      } else if (c == "cheap") {
        opts.costs = vtime::CostModel::cheap_sync();
      } else if (c == "expensive") {
        opts.costs = vtime::CostModel::expensive_sync();
      } else if (c.rfind("numa", 0) == 0) {
        u32 groups = 4;
        if (c.size() > 4 && c[4] == ':') {
          groups = static_cast<u32>(std::strtoul(c.c_str() + 5, nullptr, 10));
        }
        if (groups == 0) {
          std::fprintf(stderr, "--costs numa:G needs G >= 1\n");
          return 2;
        }
        opts.costs = vtime::CostModel::numa(groups);
      } else {
        std::fprintf(stderr, "unknown cost model '%s'\n", c.c_str());
        return 2;
      }
    } else if (arg == "--strategy") {
      if (!parse_strategy(next(), &opts.strategy)) {
        std::fprintf(stderr, "bad --strategy value\n");
        return 2;
      }
    } else if (arg == "--central-queue") {
      opts.central_queue = true;
    } else if (arg == "--shards") {
      opts.pool_shards = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--index-shards") {
      opts.index_shards =
          static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--enter-batch") {
      opts.enter_batch = true;
    } else if (arg == "--icb-shards") {
      opts.icb_shards = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--param") {
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--param expects NAME=VALUE\n");
        return 2;
      }
      popts.params[kv.substr(0, eq)] =
          std::strtoll(kv.c_str() + eq + 1, nullptr, 10);
    } else if (arg == "--tables") {
      show_tables = true;
    } else if (arg == "--dot") {
      show_dot = true;
    } else if (arg == "--instances") {
      show_instances = true;
    } else if (arg == "--emit") {
      emit_source = true;
    } else if (arg == "--timeline-csv") {
      timeline_csv = next();
    } else if (arg == "--summary-csv") {
      summary_csv = next();
    } else if (arg == "--json") {
      show_json = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--events-csv") {
      events_csv = next();
    } else if (arg == "--trace-ring") {
      opts.trace_ring_capacity =
          static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--counters") {
      show_counters = true;
    } else if (arg == "--deadline-ms") {
      opts.deadline_ms = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--deadline-vcycles") {
      opts.deadline_vcycles =
          static_cast<Cycles>(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--on-body-error") {
      const std::string v = next();
      if (v == "throw") {
        opts.on_body_error = runtime::OnBodyError::kThrow;
      } else if (v == "return") {
        opts.on_body_error = runtime::OnBodyError::kReturn;
      } else {
        std::fprintf(stderr, "--on-body-error expects throw|return\n");
        return 2;
      }
    } else if (arg == "--inject-throw" || arg == "--inject-stall") {
      long long loop = 0, j = 0, cycles = 0;
      if (!parse_fault_point(next(), &loop, &j, &cycles)) {
        std::fprintf(stderr, "%s expects LOOP:J%s\n", arg.c_str(),
                     arg == "--inject-stall" ? "[:CYCLES]" : "");
        return 2;
      }
      if (arg == "--inject-throw") {
        plan.body_throw(static_cast<LoopId>(loop), j);
      } else {
        plan.worker_stall(static_cast<LoopId>(loop), j,
                          static_cast<Cycles>(cycles));
      }
    } else if (arg == "--gantt") {
      gantt = true;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0]))) {
        gantt_width = static_cast<u32>(std::strtoul(argv[++i], nullptr, 10));
      }
    } else if (arg == "--serial") {
      run_serial = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "missing <program.loop> argument\n");
    usage(argv[0], stderr);
    return 2;
  }
  if (procs < 1) {
    std::fprintf(stderr, "--procs must be >= 1\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  try {
    if (emit_source) {
      auto ast = lang::parse_to_ast(buf.str(), popts);
      std::printf("%s", lang::to_source(ast).c_str());
      return 0;
    }
    auto prog = lang::parse_program(buf.str(), popts);
    if (show_tables) std::printf("%s\n", prog.describe().c_str());
    if (show_dot) std::printf("%s\n", prog.to_dot().c_str());
    if (show_instances) {
      const auto g = program::build_instance_graph(prog,
                                                   opts.default_body_cost);
      std::printf("%s", g.to_dot(prog.tables()).c_str());
      std::printf("! instances=%zu T1=%lld Tinf=%lld usable parallelism "
                  "T1/Tinf=%.1f\n",
                  g.nodes.size(), static_cast<long long>(g.total_work()),
                  static_cast<long long>(g.critical_path()),
                  static_cast<double>(g.total_work()) /
                      static_cast<double>(g.critical_path()));
    }

    double serial_cycles = 0;
    if (run_serial) {
      const auto s = baselines::run_sequential(prog, opts.default_body_cost,
                                               /*call_bodies=*/false);
      serial_cycles = static_cast<double>(s.total_body_cost);
      std::printf("serial: %llu instances, %llu iterations, body=%lld "
                  "cycles\n",
                  static_cast<unsigned long long>(s.instances),
                  static_cast<unsigned long long>(s.iterations),
                  static_cast<long long>(s.total_body_cost));
    }

    opts.phase_timeline = gantt || !timeline_csv.empty();
    opts.trace_events = !trace_out.empty() || !events_csv.empty();
    if (!plan.specs.empty()) opts.fault_plan = &plan;
    runtime::RunResult r;
    if (engine == "vtime") {
      r = runtime::run_vtime(prog, procs, opts);
    } else if (engine == "threads") {
      r = runtime::run_threads(prog, procs, opts);
    } else {
      std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
      return 2;
    }
    std::printf("%s", r.summary().c_str());
    if (r.failure.has_value()) {
      std::fprintf(stderr, "%s\n", r.failure->summary().c_str());
      for (const fault::WorkerProgress& p : r.failure->progress) {
        std::fprintf(stderr,
                     "  worker %u: %llu iterations, %llu dispatches, "
                     "%llu searches, %llu sync ops\n",
                     p.worker, static_cast<unsigned long long>(p.iterations),
                     static_cast<unsigned long long>(p.dispatches),
                     static_cast<unsigned long long>(p.searches),
                     static_cast<unsigned long long>(p.sync_ops));
      }
    }
    if (run_serial && r.makespan > 0 && engine == "vtime") {
      std::printf("speedup vs serial body time: %.2f\n",
                  serial_cycles / static_cast<double>(r.makespan));
    }
    if (gantt) std::printf("%s", runtime::render_gantt(r, gantt_width).c_str());
    if (!timeline_csv.empty()) {
      std::ofstream csv(timeline_csv);
      runtime::write_timeline_csv(r, csv);
      std::printf("timeline written to %s\n", timeline_csv.c_str());
    }
    if (!summary_csv.empty()) {
      const bool fresh = !std::ifstream(summary_csv).good();
      std::ofstream csv(summary_csv, std::ios::app);
      if (fresh) runtime::write_summary_csv_header(csv);
      runtime::write_summary_csv_row(path + "/" + engine, r, csv);
      std::printf("summary appended to %s\n", summary_csv.c_str());
    }
    if (show_json) {
      std::ostringstream js;
      runtime::write_json_report(r, js);
      std::printf("%s", js.str().c_str());
    }
    if (show_counters) {
      std::ostringstream cs;
      trace::write_counters(r.counters, cs);
      std::printf("%s", cs.str().c_str());
    }
    if (!trace_out.empty()) {
      std::ofstream tf(trace_out);
      if (!tf) {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        return 1;
      }
      trace::ExportMeta meta;
      // threads timestamps are ns since run start; vtime stamps are cycles,
      // exported 1:1 as microseconds so Perfetto shows round numbers.
      meta.scale_to_us = (engine == "threads") ? 1e-3 : 1.0;
      trace::write_chrome_trace(r.trace_events, r.procs, tf, meta);
      std::printf("trace written to %s (%zu events, %llu dropped)\n",
                  trace_out.c_str(), r.trace_events.size(),
                  static_cast<unsigned long long>(r.trace_events_dropped));
    }
    if (!events_csv.empty()) {
      std::ofstream ef(events_csv);
      if (!ef) {
        std::fprintf(stderr, "cannot write %s\n", events_csv.c_str());
        return 1;
      }
      trace::write_events_csv(r.trace_events, ef);
      std::printf("events written to %s\n", events_csv.c_str());
    }
    if (r.failure.has_value()) return 3;  // distinct from usage/parse errors
  } catch (const lang::ParseError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const fault::FailureError& e) {
    // --on-body-error throw, no original exception (stall/deadline).
    std::fprintf(stderr, "%s\n", e.record().summary().c_str());
    return 3;
  } catch (const fault::InjectedFault& e) {
    // --on-body-error throw rethrowing an armed --inject-throw: still a
    // cancelled run, so keep the distinct exit code.
    std::fprintf(stderr, "run failed (injected-fault): %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    // --on-body-error throw rethrowing the user's own body exception lands
    // here; without a RunResult there is no record to print.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
