// selfsched-serve: command-line front end for the resident multi-nest
// scheduler service (src/serve/, docs/serving.md).
//
//   selfsched-serve [service options] [per-submission options] <prog.loop>...
//   selfsched-serve --help
//
// Per-submission options (--tenant/--priority/--deadline-ms/--repeat) apply
// to the program files that FOLLOW them, so one invocation can stage a
// mixed-tenant, mixed-priority load:
//
//   selfsched-serve --procs 8 --tenant 1 a.loop --tenant 2 --priority 1 b.loop
//
// Every submission is awaited; the tool prints one line per result, the
// per-tenant fairness table, and (with --counters) the service counters.
// Exit codes follow selfsched-run: 0 ok, 1 I/O or parse error, 2 usage,
// 3 when any submission finished with a failure record.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lang/parser.hpp"
#include "serve/service.hpp"
#include "trace/export.hpp"

using namespace selfsched;

namespace {

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options] <program.loop>...\n"
      "\n"
      "service:\n"
      "  --procs N            resident worker pool size (default 8)\n"
      "  --priorities N       priority tiers (default 2)\n"
      "  --max-queue N        admission: max queued submissions (default 64)\n"
      "  --max-tenants N      admission: max distinct in-flight tenants\n"
      "                       (default 16)\n"
      "  --max-active N       concurrently executing namespaces (default 4)\n"
      "  --slice-us N         worker slice budget before re-arbitration\n"
      "                       (default 500)\n"
      "  --deterministic      virtual-time service mode: grants are\n"
      "                       synchronous, whole-program, bit-replayable;\n"
      "                       prints the grant log\n"
      "\n"
      "resilience (service default policy; docs/robustness.md):\n"
      "  --max-retries N      retry budget for transient failures\n"
      "                       (default 0 = retries off)\n"
      "  --watchdog-ms N      stall watchdog: rescue a namespace that makes\n"
      "                       no progress for N ms (threads mode; vcycles\n"
      "                       in deterministic mode; default 0 = off)\n"
      "  --quarantine-failures N  trip the tenant circuit breaker after N\n"
      "                       failures inside the sliding window (default\n"
      "                       0 = breaker off)\n"
      "  --quarantine-window MS   sliding failure window (default 1000)\n"
      "  --shed-watermark N   queue depth at which admission sheds the\n"
      "                       lowest-priority pending work (default 0 = off)\n"
      "\n"
      "per-submission (apply to the program files that follow):\n"
      "  --tenant ID          tenant namespace id (default 0)\n"
      "  --priority P         tier, 0 = highest (default 0)\n"
      "  --deadline-ms N      cancel this submission N ms after submit\n"
      "                       (threads mode; 0 = none)\n"
      "  --repeat N           submit the next file N times (default 1)\n"
      "  --param NAME=VALUE   bind a named constant (repeatable)\n"
      "\n"
      "output:\n"
      "  --counters           print the service counters (name=value)\n"
      "  --json               print one JSON report (results, tenants,\n"
      "                       counters, resilience health) to stdout\n",
      argv0);
}

u64 parse_u64(const char* s) {
  return static_cast<u64>(std::strtoull(s, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  u32 procs = 8;
  serve::ServeOptions sopts;
  serve::SubmitOptions cur;  // sticky per-submission state
  u32 repeat = 1;
  bool show_counters = false;
  bool show_json = false;
  // Time-valued resilience knobs land on _ms or _vcycles depending on the
  // engine, and --deterministic may appear after them — stage, apply last.
  u64 watchdog = 0, quarantine_window = 0;
  bool have_quarantine_window = false;
  lang::ParseOptions popts;

  struct Staged {
    std::string path;
    serve::SubmitOptions s;
    u32 repeat;
  };
  std::vector<Staged> staged;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], stdout);
      return 0;
    } else if (arg == "--procs") {
      procs = static_cast<u32>(parse_u64(next()));
    } else if (arg == "--priorities") {
      sopts.priorities = static_cast<u32>(parse_u64(next()));
    } else if (arg == "--max-queue") {
      sopts.max_queue_depth = static_cast<u32>(parse_u64(next()));
    } else if (arg == "--max-tenants") {
      sopts.max_tenants = static_cast<u32>(parse_u64(next()));
    } else if (arg == "--max-active") {
      sopts.max_active = static_cast<u32>(parse_u64(next()));
    } else if (arg == "--slice-us") {
      sopts.slice_us = static_cast<i64>(parse_u64(next()));
    } else if (arg == "--deterministic") {
      sopts.deterministic = true;
    } else if (arg == "--max-retries") {
      sopts.resilience.max_retries = static_cast<u32>(parse_u64(next()));
    } else if (arg == "--watchdog-ms") {
      watchdog = parse_u64(next());
    } else if (arg == "--quarantine-failures") {
      sopts.resilience.quarantine_failures =
          static_cast<u32>(parse_u64(next()));
    } else if (arg == "--quarantine-window") {
      quarantine_window = parse_u64(next());
      have_quarantine_window = true;
    } else if (arg == "--shed-watermark") {
      sopts.resilience.shed_watermark = static_cast<u32>(parse_u64(next()));
    } else if (arg == "--tenant") {
      cur.tenant = parse_u64(next());
    } else if (arg == "--priority") {
      cur.priority = static_cast<u32>(parse_u64(next()));
    } else if (arg == "--deadline-ms") {
      cur.deadline_ms = static_cast<i64>(parse_u64(next()));
    } else if (arg == "--repeat") {
      repeat = static_cast<u32>(parse_u64(next()));
      if (repeat < 1) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return 2;
      }
    } else if (arg == "--param") {
      const std::string kv = next();
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--param expects NAME=VALUE\n");
        return 2;
      }
      popts.params[kv.substr(0, eq)] =
          std::strtoll(kv.c_str() + eq + 1, nullptr, 10);
    } else if (arg == "--counters") {
      show_counters = true;
    } else if (arg == "--json") {
      show_json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    } else {
      staged.push_back({arg, cur, repeat});
      repeat = 1;  // --repeat covers only the next file
    }
  }
  if (staged.empty()) {
    std::fprintf(stderr, "no program files given\n");
    usage(argv[0], stderr);
    return 2;
  }
  if (procs < 1) {
    std::fprintf(stderr, "--procs must be >= 1\n");
    return 2;
  }
  if (sopts.deterministic) {
    sopts.resilience.watchdog_stall_vcycles = watchdog;
    if (have_quarantine_window) {
      sopts.resilience.quarantine_window_vcycles = quarantine_window;
    }
  } else {
    sopts.resilience.watchdog_stall_ms = static_cast<i64>(watchdog);
    if (have_quarantine_window) {
      sopts.resilience.quarantine_window_ms =
          static_cast<i64>(quarantine_window);
    }
  }

  serve::Service svc(procs, sopts);
  struct Pending {
    std::string label;
    serve::Handle handle;
  };
  std::vector<Pending> pending;

  for (const Staged& st : staged) {
    std::ifstream in(st.path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", st.path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::shared_ptr<const program::NestedLoopProgram> prog;
    try {
      prog = std::make_shared<const program::NestedLoopProgram>(
          lang::parse_program(buf.str(), popts));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", st.path.c_str(), e.what());
      return 1;
    }
    for (u32 k = 0; k < st.repeat; ++k) {
      const serve::SubmitOutcome out = svc.submit(prog, st.s);
      if (!out.accepted()) {
        std::printf("%s: rejected (%s)\n", st.path.c_str(),
                    serve::submit_status_name(out.status));
        continue;
      }
      pending.push_back({st.path, out.handle});
    }
  }

  int rc = 0;
  std::vector<runtime::RunResult> results;
  results.reserve(pending.size());
  for (Pending& p : pending) {
    const runtime::RunResult r = p.handle.await();
    if (r.failure.has_value()) {
      std::printf("%s [sub %llu, tenant %llu]: %s\n", p.label.c_str(),
                  static_cast<unsigned long long>(p.handle.id()),
                  static_cast<unsigned long long>(p.handle.tenant()),
                  r.failure->summary().c_str());
      rc = 3;
    } else {
      std::printf("%s [sub %llu, tenant %llu]: ok, %llu iterations, "
                  "makespan %llu%s\n",
                  p.label.c_str(),
                  static_cast<unsigned long long>(p.handle.id()),
                  static_cast<unsigned long long>(p.handle.tenant()),
                  static_cast<unsigned long long>(r.total.iterations),
                  static_cast<unsigned long long>(r.makespan),
                  r.counters.serve_retries > 0 ? " (retried)" : "");
    }
    results.push_back(r);
  }
  svc.stop();

  std::printf("tenants:\n");
  for (const runtime::TenantStats& t : svc.tenant_snapshot()) {
    std::printf("  tenant %llu prio %u: %llu submissions, granted %llu, "
                "queue-wait %llu, %llu slices, %llu preemptions\n",
                static_cast<unsigned long long>(t.tenant), t.priority,
                static_cast<unsigned long long>(t.submissions),
                static_cast<unsigned long long>(t.granted),
                static_cast<unsigned long long>(t.queue_wait),
                static_cast<unsigned long long>(t.slices),
                static_cast<unsigned long long>(t.preemptions));
  }
  if (sopts.deterministic) {
    std::printf("grant log:");
    for (const u64 seq : svc.grant_log()) {
      std::printf(" %llu", static_cast<unsigned long long>(seq));
    }
    std::printf("\n");
  }
  const std::vector<serve::TenantHealthRow> health = svc.health_snapshot();
  if (sopts.resilience.any_enabled() && !health.empty()) {
    std::printf("health:\n");
    for (const serve::TenantHealthRow& h : health) {
      std::printf("  tenant %llu: %s%s, %llu retries, %llu failures%s%s%s, "
                  "%llu completions, %llu quarantines, %llu sheds\n",
                  static_cast<unsigned long long>(h.tenant),
                  serve::tenant_state_name(h.state),
                  h.retrying   ? " (retrying)"
                  : h.in_flight ? " (active)"
                                : "",
                  static_cast<unsigned long long>(h.retries),
                  static_cast<unsigned long long>(h.failures),
                  h.has_failure ? " (last " : "",
                  h.has_failure
                      ? fault::FailureRecord::kind_name(h.last_failure)
                      : "",
                  h.has_failure ? ")" : "",
                  static_cast<unsigned long long>(h.completions),
                  static_cast<unsigned long long>(h.quarantines),
                  static_cast<unsigned long long>(h.sheds));
    }
  }
  if (show_counters) {
    std::ostringstream cs;
    trace::write_counters(svc.counters(), cs);
    std::printf("%s", cs.str().c_str());
  }
  if (show_json) {
    const trace::Counters counters = svc.counters();
    const serve::ResiliencePolicy& pol = sopts.resilience;
    std::printf("{\n  \"results\": [");
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const runtime::RunResult& r = results[i];
      std::printf(
          "%s\n    {\"sub\": %llu, \"tenant\": %llu, \"ok\": %s, "
          "\"retries\": %llu, \"iterations\": %llu, \"makespan\": %llu%s%s%s}",
          i ? "," : "",
          static_cast<unsigned long long>(pending[i].handle.id()),
          static_cast<unsigned long long>(pending[i].handle.tenant()),
          r.failure.has_value() ? "false" : "true",
          static_cast<unsigned long long>(r.counters.serve_retries),
          static_cast<unsigned long long>(r.total.iterations),
          static_cast<unsigned long long>(r.makespan),
          r.failure.has_value() ? ", \"failure\": \"" : "",
          r.failure.has_value()
              ? fault::FailureRecord::kind_name(r.failure->kind)
              : "",
          r.failure.has_value() ? "\"" : "");
    }
    std::printf("\n  ],\n  \"counters\": {");
    bool first = true;
    trace::Counters::for_each_field([&](const char* name,
                                        u64 trace::Counters::* m) {
      std::printf("%s\n    \"%s\": %llu", first ? "" : ",", name,
                  static_cast<unsigned long long>(counters.*m));
      first = false;
    });
    std::printf(
        "\n  },\n  \"resilience\": {\n"
        "    \"policy\": {\"max_retries\": %u, \"watchdog_stall_%s\": %llu, "
        "\"quarantine_failures\": %u, \"quarantine_window_%s\": %llu, "
        "\"shed_watermark\": %u},\n"
        "    \"health\": [",
        pol.max_retries, sopts.deterministic ? "vcycles" : "ms",
        static_cast<unsigned long long>(
            sopts.deterministic ? pol.watchdog_stall_vcycles
                                : static_cast<u64>(pol.watchdog_stall_ms)),
        pol.quarantine_failures, sopts.deterministic ? "vcycles" : "ms",
        static_cast<unsigned long long>(
            sopts.deterministic
                ? pol.quarantine_window_vcycles
                : static_cast<u64>(pol.quarantine_window_ms)),
        pol.shed_watermark);
    for (std::size_t i = 0; i < health.size(); ++i) {
      const serve::TenantHealthRow& h = health[i];
      std::printf(
          "%s\n      {\"tenant\": %llu, \"state\": \"%s\", "
          "\"in_flight\": %s, \"retrying\": %s, \"retries\": %llu, "
          "\"failures\": %llu, \"completions\": %llu, "
          "\"quarantines\": %llu, \"sheds\": %llu%s%s%s}",
          i ? "," : "", static_cast<unsigned long long>(h.tenant),
          serve::tenant_state_name(h.state), h.in_flight ? "true" : "false",
          h.retrying ? "true" : "false",
          static_cast<unsigned long long>(h.retries),
          static_cast<unsigned long long>(h.failures),
          static_cast<unsigned long long>(h.completions),
          static_cast<unsigned long long>(h.quarantines),
          static_cast<unsigned long long>(h.sheds),
          h.has_failure ? ", \"last_failure\": \"" : "",
          h.has_failure
              ? fault::FailureRecord::kind_name(h.last_failure)
              : "",
          h.has_failure ? "\"" : "");
    }
    std::printf("\n    ]\n  }\n}\n");
  }
  return rc;
}
