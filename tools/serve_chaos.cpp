// serve-chaos: deterministic chaos harness for the serve daemon's
// resilience layer (docs/robustness.md).  Mixed-priority programs from
// "chaotic" tenants carry seeded fault injections — body throws, indefinite
// worker stalls (rescued by the stall watchdog), poison bodies that throw
// on every attempt — while "healthy" tenants run identical clean workloads
// alongside.  The harness proves:
//
//   * every submission reaches a terminal state: completed (possibly after
//     retries), permanent failure (retry budget exhausted), or shed — no
//     hangs;
//   * retried completions are oracle-exact: the iteration set executed by
//     the final attempt equals the sequential oracle's (failed attempts
//     may only add bounded duplicates, never new or missing iterations);
//   * terminal failures are only the expected kinds (kBodyException from
//     poison programs, kShed for overload victims), and shed victims come
//     only from tiers strictly below some arrival;
//   * the quarantine breaker trips, rejects, and readmits on probation;
//   * healthy tenants' granted-cycle fairness holds within the serve
//     fairness bound despite the chaos next door;
//   * zero audit violations anywhere;
//   * --deterministic: the whole chaos trajectory (grant log, retries,
//     sheds, quarantines, per-result decision traces) is a pure function
//     of the configuration — --replay-check runs it twice and compares.
//
// Exit codes: 0 all checks passed, 1 any violation, 2 usage.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "baselines/sequential.hpp"
#include "serve/service.hpp"
#include "workloads/programs.hpp"

using namespace selfsched;

namespace {

/// Same dependent-recurrence spin as serve-stress: every body burns equal
/// CPU so healthy tenants' granted-cycle totals compare workload, not luck.
constexpr u64 kBodySpinRounds = 4000;

void body_spin(u64 x) {
  for (u64 i = 0; i < kBodySpinRounds; ++i) x = x * 0xd1342543de82ef95ULL + 1;
  volatile u64 sink = x;
  (void)sink;
}

/// What a chaotic tenant's k-th program injects.
enum class Flavor : u32 {
  kClean,      // nothing armed (also the probation probe that readmits)
  kBodyThrow,  // one injected body throw -> transient -> retried
  kStall,      // one indefinite worker stall -> watchdog rescue -> retried
  kPoison,     // body throws on EVERY attempt -> retry budget exhausted
};

Flavor flavor_for(u64 k) {
  switch (k % 4) {
    case 0: return Flavor::kBodyThrow;
    case 1: return Flavor::kStall;
    case 2: return Flavor::kPoison;
    default: return Flavor::kClean;
  }
}

const char* flavor_name(Flavor f) {
  switch (f) {
    case Flavor::kClean: return "clean";
    case Flavor::kBodyThrow: return "body-throw";
    case Flavor::kStall: return "stall";
    case Flavor::kPoison: return "poison";
  }
  return "?";
}

/// Thread-safe iteration recorder.  Unlike serve-stress's, verification is
/// retry-aware: a failed attempt executes a SUBSET of the oracle's
/// iterations before cancellation propagates, and the retried attempt
/// executes them all, so the recorded multiset is the oracle set plus
/// bounded duplicates.  Each key (leaf, indices, j) identifies one
/// iteration instance, so the oracle multiset is duplicate-free and the
/// check is: dedup(recorded) == oracle, duplicates only when attempts > 0,
/// and no key repeated more than attempts extra times.
struct Recorder {
  using Key = std::tuple<std::string, std::vector<i64>, i64>;

  program::BodyFactory factory(bool spin, bool poison) {
    return [this, spin, poison](const std::string& name) -> program::BodyFn {
      return [this, spin, poison, name](ProcId, const IndexVec& ivec, i64 j) {
        if (poison) throw std::runtime_error("poison body");
        if (spin) body_spin(static_cast<u64>(j) + ivec.size());
        std::vector<i64> iv(ivec.begin(), ivec.end());
        std::lock_guard lk(mu);
        seen.emplace_back(name, std::move(iv), j);
      };
    };
  }

  std::vector<Key> canonical(const program::NestedLoopProgram& prog) const {
    std::vector<Key> out;
    std::lock_guard lk(mu);
    out.reserve(seen.size());
    for (const auto& [name, iv, j] : seen) {
      Level depth = 0;
      for (u32 i = 0; i < prog.num_loops(); ++i) {
        if (prog.loop(i).name == name) {
          depth = prog.loop(i).depth;
          break;
        }
      }
      std::vector<i64> trimmed(
          iv.begin(), iv.begin() + std::min<std::size_t>(iv.size(), depth));
      out.emplace_back(name, std::move(trimmed), j);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  mutable std::mutex mu;
  std::vector<Key> seen;
};

workloads::RandomProgramConfig config_for(u64 seed) {
  workloads::RandomProgramConfig cfg;
  cfg.max_depth = 2 + static_cast<u32>(seed % 2);
  cfg.max_bound = 2 + static_cast<i64>(seed % 3);
  cfg.max_leaf_bound = 3 + static_cast<i64>(seed % 6);
  cfg.max_body_cost = 20 + (seed % 60);
  return cfg;
}

struct Config {
  u32 procs = 8;
  u32 submitters = 8;
  u32 programs = 224;
  u32 tenants = 8;  // first half chaotic (tier 1), second half healthy (0)
  u32 max_queue = 32;
  u32 max_active = 3;
  i64 slice_us = 200;
  u64 seed = 1987;
  double fairness_tol = 0.20;
  bool check_fairness = true;
  bool deterministic = false;
  bool replay_check = false;
  std::string json_path;
};

serve::ResiliencePolicy policy_for(const Config& c) {
  serve::ResiliencePolicy pol;
  pol.max_retries = 2;
  pol.retry_jitter_seed = c.seed;
  pol.retry_body_errors = true;  // poison programs burn the whole budget
  pol.quarantine_failures = 2;
  pol.shed_watermark = c.max_queue / 2;
  if (c.deterministic) {
    pol.watchdog_stall_vcycles = 200'000;
    pol.retry_backoff_vcycles = 10'000;
    pol.retry_backoff_cap_vcycles = 100'000;
    pol.quarantine_window_vcycles = 50'000'000;
    pol.quarantine_cooldown_vcycles = 200'000;
  } else {
    pol.watchdog_stall_ms = 100;
    pol.retry_backoff_us = 200;
    pol.retry_backoff_cap_us = 5'000;
    pol.quarantine_window_ms = 10'000;
    pol.quarantine_cooldown_ms = 50;
  }
  return pol;
}

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options]\n"
      "  --procs N          worker pool size / simulated procs (default 8)\n"
      "  --submitters N     submitter threads, threads mode (default 8)\n"
      "  --programs N       total programs, rounded up to a tenant multiple\n"
      "                     (default 224)\n"
      "  --tenants N        even tenant count; first half chaotic at tier 1,\n"
      "                     second half healthy at tier 0 (default 8)\n"
      "  --max-queue N      admission queue depth (default 32; the shed\n"
      "                     watermark is half of it)\n"
      "  --max-active N     concurrent namespaces (default 3)\n"
      "  --slice-us N       slice budget (default 200)\n"
      "  --seed S           base seed for programs, faults and jitter\n"
      "  --fairness-tol F   healthy-tenant granted spread bound (default "
      "0.20)\n"
      "  --no-fairness      report fairness without asserting it\n"
      "  --deterministic    virtual-time mode: single-threaded, replayable\n"
      "  --replay-check     (with --deterministic) run twice, compare the\n"
      "                     full trajectory bit-for-bit\n"
      "  --json FILE        write the chaos report as JSON\n",
      argv0);
}

struct Tally {
  u64 completed = 0;
  u64 completed_retried = 0;
  u64 terminal_body_error = 0;
  u64 terminal_shed = 0;
  u64 rejected_shed = 0;
  u64 rejected_quarantined = 0;
};

struct Failure {
  std::string what;
};

/// Everything one deterministic pass produces, for the replay comparison.
struct Trajectory {
  std::vector<u64> grant_log;
  // (submission idx, submit status, failure kind or "ok", makespan,
  //  retries, decision count) per program, in submission order.
  std::vector<std::tuple<u32, std::string, std::string, u64, u64, u64>>
      outcomes;
  std::vector<runtime::RunResult> results;  // completed/failed awaits only
  trace::Counters counters;
};

}  // namespace

int main(int argc, char** argv) {
  Config c;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], stdout);
      return 0;
    } else if (arg == "--procs") {
      c.procs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--submitters") {
      c.submitters = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--programs") {
      c.programs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--tenants") {
      c.tenants = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-queue") {
      c.max_queue = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-active") {
      c.max_active = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--slice-us") {
      c.slice_us = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--seed") {
      c.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fairness-tol") {
      c.fairness_tol = std::strtod(next(), nullptr);
    } else if (arg == "--no-fairness") {
      c.check_fairness = false;
    } else if (arg == "--deterministic") {
      c.deterministic = true;
    } else if (arg == "--replay-check") {
      c.replay_check = true;
    } else if (arg == "--json") {
      c.json_path = next();
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (c.procs < 1 || c.submitters < 1 || c.tenants < 2 ||
      c.tenants % 2 != 0) {
    std::fprintf(stderr, "need procs/submitters >= 1, even tenants >= 2\n");
    return 2;
  }
  if (c.replay_check && !c.deterministic) {
    std::fprintf(stderr, "--replay-check requires --deterministic\n");
    return 2;
  }
  c.programs = ((c.programs + c.tenants - 1) / c.tenants) * c.tenants;
  const u32 chaotic = c.tenants / 2;  // tenants [0, chaotic) inject faults

  std::mutex fail_mu;
  std::vector<Failure> failures;
  auto fail = [&](std::string what) {
    std::lock_guard lk(fail_mu);
    failures.push_back({std::move(what)});
  };

  // Seed scheme: healthy tenants' programs depend on k ONLY, so every
  // healthy tenant runs the identical set and tier-0 granted totals are
  // directly comparable.  Chaotic programs are distinct per (tenant, k).
  const auto seed_for = [&](u64 tenant, u64 k) -> u64 {
    return tenant < chaotic ? c.seed + 1000 * (tenant + 1) + k
                            : c.seed * 77 + k;
  };

  // One in-flight chaos submission: program + recorder + fault plan must
  // outlive every retry attempt (the plan is deliberately NOT reset across
  // attempts — fired exactly-once specs stay fired, which is what makes
  // the retried run oracle-exact).
  struct InFlight {
    u32 idx = 0;
    u64 tenant = 0;
    u64 seed = 0;
    Flavor flavor = Flavor::kClean;
    std::unique_ptr<Recorder> rec;
    std::unique_ptr<fault::FaultPlan> plan;
    std::shared_ptr<const program::NestedLoopProgram> prog;
    serve::Handle handle;
  };

  const auto build = [&](u32 idx) -> InFlight {
    InFlight f;
    f.idx = idx;
    f.tenant = idx % c.tenants;
    const u64 k = idx / c.tenants;
    f.seed = seed_for(f.tenant, k);
    f.flavor = f.tenant < chaotic ? flavor_for(k) : Flavor::kClean;
    f.rec = std::make_unique<Recorder>();
    f.prog = std::make_shared<const program::NestedLoopProgram>(
        workloads::random_program(
            f.seed, config_for(f.seed),
            f.rec->factory(/*spin=*/!c.deterministic,
                           /*poison=*/f.flavor == Flavor::kPoison)));
    // Wildcard loop + iteration: fire on the first body point any worker
    // reaches (random programs don't guarantee loop 0 has a body, and
    // iteration numbering is program-shaped).  The CAS election in the
    // plan still makes each spec fire exactly once.
    if (f.flavor == Flavor::kBodyThrow) {
      f.plan = std::make_unique<fault::FaultPlan>();
      f.plan->body_throw(kNoLoop, /*iteration=*/-1);
    } else if (f.flavor == Flavor::kStall) {
      f.plan = std::make_unique<fault::FaultPlan>();
      f.plan->worker_stall(kNoLoop, /*iteration=*/-1, /*cycles=*/0);
    }
    return f;
  };

  Tally tally;
  std::mutex tally_mu;

  // The iteration set a sequential execution of f's program produces.
  const auto oracle_keys = [&](const InFlight& f) {
    Recorder oracle;
    const program::NestedLoopProgram serial = workloads::random_program(
        f.seed, config_for(f.seed),
        oracle.factory(/*spin=*/false, /*poison=*/false));
    baselines::run_sequential(serial, /*default_body_cost=*/1,
                              /*call_bodies=*/true);
    return oracle.canonical(serial);
  };

  // Retry-aware oracle verification (see Recorder comment).
  const auto verify_completion = [&](const InFlight& f,
                                     const runtime::RunResult& r) {
    const u64 attempts = r.counters.serve_retries;
    const std::vector<Recorder::Key> want = oracle_keys(f);
    const std::vector<Recorder::Key> got = f.rec->canonical(*f.prog);
    std::vector<Recorder::Key> unique = got;
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    if (unique != want) {
      fail("program " + std::to_string(f.idx) + " (seed " +
           std::to_string(f.seed) + ", " + flavor_name(f.flavor) +
           "): executed iteration set diverges from the sequential oracle");
      return;
    }
    if (attempts == 0 && got.size() != want.size()) {
      fail("program " + std::to_string(f.idx) +
           ": duplicate iterations without any retry");
      return;
    }
    // A key may repeat at most once per failed attempt.
    u64 worst = 0;
    for (std::size_t i = 0; i < got.size();) {
      std::size_t j = i;
      while (j < got.size() && got[j] == got[i]) ++j;
      worst = std::max<u64>(worst, j - i - 1);
      i = j;
    }
    if (worst > attempts) {
      fail("program " + std::to_string(f.idx) + ": an iteration ran " +
           std::to_string(worst + 1) + " times across " +
           std::to_string(attempts + 1) + " attempts");
    }
  };

  const auto verify = [&](InFlight& f) {
    const runtime::RunResult r = f.handle.await();
    if (r.audit_violations != 0) {
      fail("program " + std::to_string(f.idx) + ": " +
           std::to_string(r.audit_violations) + " audit violations:\n" +
           r.audit_report);
      return;
    }
    if (!r.failure.has_value()) {
      // Random programs can be zero-trip: no body ever executes, so a
      // poison body never fires and clean completion is correct there.
      if (f.flavor == Flavor::kPoison && !oracle_keys(f).empty()) {
        fail("program " + std::to_string(f.idx) +
             ": poison program completed without failing");
        return;
      }
      verify_completion(f, r);
      std::lock_guard lk(tally_mu);
      tally.completed++;
      if (r.counters.serve_retries > 0) tally.completed_retried++;
      return;
    }
    switch (r.failure->kind) {
      case fault::FailureRecord::Kind::kBodyException:
        if (f.flavor != Flavor::kPoison) {
          fail("program " + std::to_string(f.idx) + " (" +
               flavor_name(f.flavor) +
               "): unexpected terminal body exception: " +
               r.failure->summary());
          return;
        }
        if (r.counters.serve_retries != policy_for(c).max_retries) {
          fail("program " + std::to_string(f.idx) +
               ": poison terminal after " +
               std::to_string(r.counters.serve_retries) +
               " retries, expected the whole budget");
          return;
        }
        {
          std::lock_guard lk(tally_mu);
          tally.terminal_body_error++;
        }
        return;
      case fault::FailureRecord::Kind::kShed:
        if (f.tenant >= chaotic) {
          fail("program " + std::to_string(f.idx) +
               ": a tier-0 healthy submission was shed");
          return;
        }
        {
          std::lock_guard lk(tally_mu);
          tally.terminal_shed++;
        }
        return;
      default:
        fail("program " + std::to_string(f.idx) + " (" +
             flavor_name(f.flavor) + "): unexpected terminal failure " +
             r.failure->summary());
        return;
    }
  };

  serve::ServeOptions sopts;
  sopts.priorities = 2;
  sopts.max_queue_depth = c.max_queue;
  sopts.max_tenants = c.tenants;
  sopts.max_active = c.max_active;
  sopts.slice_us = c.slice_us;
  sopts.deterministic = c.deterministic;
  sopts.resilience = policy_for(c);

  const auto submit_opts = [&](const InFlight& f) {
    serve::SubmitOptions s;
    s.tenant = f.tenant;
    s.priority = f.tenant < chaotic ? 1u : 0u;
    s.sched.audit = true;
    s.sched.default_body_cost = 1;
    s.sched.fault_plan = f.plan.get();
    return s;
  };

  // ---- deterministic mode: single-threaded, fully replayable ------------
  if (c.deterministic) {
    const auto run_once = [&](Trajectory& tr) {
      serve::Service svc(c.procs, sopts);
      std::deque<InFlight> window;
      const auto drain_one = [&] {
        InFlight f = std::move(window.front());
        window.pop_front();
        const runtime::RunResult r = f.handle.await();
        tr.outcomes.emplace_back(
            f.idx, "accepted",
            r.failure ? fault::FailureRecord::kind_name(r.failure->kind)
                      : "ok",
            r.makespan, r.counters.serve_retries,
            r.schedule_decisions.size());
        tr.results.push_back(r);
        verify(f);
      };
      for (u32 idx = 0; idx < c.programs; ++idx) {
        InFlight f = build(idx);
        bool admitted = false;
        u32 refusals = 0;
        for (;;) {
          const serve::SubmitOutcome out = svc.submit(f.prog,
                                                      submit_opts(f));
          if (out.accepted()) {
            f.handle = out.handle;
            admitted = true;
            break;
          }
          {
            std::lock_guard lk(tally_mu);
            if (out.status == serve::SubmitStatus::kShed) {
              tally.rejected_shed++;
            } else if (out.status == serve::SubmitStatus::kQuarantined) {
              tally.rejected_quarantined++;
            } else {
              fail("program " + std::to_string(idx) + ": rejected (" +
                   serve::submit_status_name(out.status) + ")");
            }
          }
          // Refusals are flow control here too: draining one in-flight
          // program advances virtual time and frees queue space, all of
          // it pure function of the configuration.  Terminal only once
          // nothing is left to drain or the retry budget is spent.
          if (window.empty() || ++refusals >= 64) {
            tr.outcomes.emplace_back(
                f.idx, serve::submit_status_name(out.status), "", 0, 0, 0);
            break;
          }
          drain_one();
        }
        if (!admitted) continue;
        window.push_back(std::move(f));
        // Keep more in flight than the shed watermark so overload
        // shedding actually engages in deterministic mode.
        if (window.size() >= 24) drain_one();
      }
      while (!window.empty()) drain_one();
      svc.stop();
      tr.grant_log = svc.grant_log();
      tr.counters = svc.counters();
    };

    Trajectory a;
    run_once(a);
    if (a.counters.serve_retries == 0) fail("no retries happened");
    if (a.counters.serve_watchdog_rescues == 0) {
      fail("no watchdog rescues happened");
    }
    if (a.counters.serve_quarantines == 0) {
      fail("no quarantine trips happened");
    }
    if (a.counters.serve_sheds == 0) fail("no sheds happened");
    if (c.replay_check) {
      Trajectory b;
      run_once(b);
      if (a.grant_log != b.grant_log) fail("replay: grant logs diverge");
      if (a.outcomes != b.outcomes) {
        fail("replay: submission outcomes diverge");
      }
      trace::Counters::for_each_field([&](const char* name,
                                          u64 trace::Counters::* m) {
        if (a.counters.*m != b.counters.*m) {
          fail(std::string("replay: counter ") + name + " diverges: " +
               std::to_string(a.counters.*m) + " vs " +
               std::to_string(b.counters.*m));
        }
      });
      if (a.results.size() == b.results.size()) {
        for (std::size_t i = 0; i < a.results.size(); ++i) {
          if (a.results[i].schedule_decisions !=
              b.results[i].schedule_decisions) {
            fail("replay: schedule decisions diverge at result " +
                 std::to_string(i));
          }
        }
      } else {
        fail("replay: result counts diverge");
      }
      std::printf("replay check: two runs, %zu grants each, %s\n",
                  a.grant_log.size(),
                  failures.empty() ? "bit-identical" : "DIVERGED");
    }
    std::printf(
        "det chaos: %llu completed (%llu retried), %llu poison-terminal, "
        "%llu shed, %llu shed-refused, %llu quarantine-rejected; "
        "%llu retries, %llu rescues, %llu quarantines, %llu sheds\n",
        static_cast<unsigned long long>(tally.completed),
        static_cast<unsigned long long>(tally.completed_retried),
        static_cast<unsigned long long>(tally.terminal_body_error),
        static_cast<unsigned long long>(tally.terminal_shed),
        static_cast<unsigned long long>(tally.rejected_shed),
        static_cast<unsigned long long>(tally.rejected_quarantined),
        static_cast<unsigned long long>(a.counters.serve_retries),
        static_cast<unsigned long long>(a.counters.serve_watchdog_rescues),
        static_cast<unsigned long long>(a.counters.serve_quarantines),
        static_cast<unsigned long long>(a.counters.serve_sheds));
    if (!failures.empty()) {
      for (const Failure& f : failures) {
        std::fprintf(stderr, "FAIL: %s\n", f.what.c_str());
      }
      return 1;
    }
    std::printf("serve-chaos: OK\n");
    return 0;
  }

  // ---- threads mode ------------------------------------------------------
  serve::Service svc(c.procs, sopts);
  std::atomic<u64> queue_full_retries{0};
  std::atomic<u64> rejected_shed{0};
  std::atomic<u64> rejected_quarantined{0};

  const auto submitter = [&](u32 sid) {
    std::deque<InFlight> window;
    for (u32 idx = sid; idx < c.programs; idx += c.submitters) {
      InFlight f = build(idx);
      const serve::SubmitOptions s = submit_opts(f);
      // Shed and quarantine refusals are flow-control signals, not
      // permanent bans: back off and resubmit, bounded so a wedged service
      // can't hang the harness.  A tenant that exhausts the budget counts
      // the refusal as terminal for this program.
      u32 refusals = 0;
      for (;;) {
        const serve::SubmitOutcome out = svc.submit(f.prog, s);
        if (out.accepted()) {
          f.handle = out.handle;
          break;
        }
        if (out.status == serve::SubmitStatus::kQueueFull) {
          queue_full_retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        if (out.status == serve::SubmitStatus::kShed) {
          rejected_shed.fetch_add(1, std::memory_order_relaxed);
        } else if (out.status == serve::SubmitStatus::kQuarantined) {
          rejected_quarantined.fetch_add(1, std::memory_order_relaxed);
          if (f.tenant >= chaotic) {
            fail("program " + std::to_string(idx) +
                 ": healthy tenant quarantined");
            break;
          }
        } else {
          fail("program " + std::to_string(idx) + ": rejected (" +
               serve::submit_status_name(out.status) + ")");
          break;
        }
        if (++refusals >= 2000) break;  // terminal refusal
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      if (!f.handle.valid()) continue;
      window.push_back(std::move(f));
      if (window.size() >= 4) {
        verify(window.front());
        window.pop_front();
      }
    }
    while (!window.empty()) {
      verify(window.front());
      window.pop_front();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(c.submitters);
  for (u32 s = 0; s < c.submitters; ++s) threads.emplace_back(submitter, s);
  for (std::thread& t : threads) t.join();
  svc.stop();
  tally.rejected_shed = rejected_shed.load();
  tally.rejected_quarantined = rejected_quarantined.load();

  const std::vector<runtime::TenantStats> tenants = svc.tenant_snapshot();
  const std::vector<serve::TenantHealthRow> health = svc.health_snapshot();
  const trace::Counters counters = svc.counters();

  // The chaos machinery must actually have fired.
  if (counters.serve_retries == 0) fail("no retries happened");
  if (counters.serve_watchdog_rescues == 0) {
    fail("no watchdog rescues happened");
  }
  if (counters.serve_quarantines == 0) fail("no quarantine trips happened");
  if (counters.serve_sheds == 0) fail("no sheds happened");
  if (tally.completed_retried == 0) {
    fail("no retried submission completed (oracle-exact retry unproven)");
  }

  // Healthy-tenant fairness: identical tier-0 workloads must land within
  // the serve fairness bound, chaos or no chaos.  Skip tenants that lost
  // submissions to admission noise (there should be none — asserted above).
  u64 fair_min = std::numeric_limits<u64>::max();
  u64 fair_max = 0;
  u32 fair_n = 0;
  for (const runtime::TenantStats& t : tenants) {
    if (t.tenant < chaotic) continue;
    fair_min = std::min<u64>(fair_min, t.granted);
    fair_max = std::max<u64>(fair_max, t.granted);
    fair_n++;
  }
  double spread = 0.0;
  if (fair_n >= 2 && fair_max > 0) {
    spread = static_cast<double>(fair_max - fair_min) /
             static_cast<double>(fair_max);
    std::printf("healthy tier: %u tenants, granted [%llu, %llu], "
                "spread %.1f%%\n",
                fair_n, static_cast<unsigned long long>(fair_min),
                static_cast<unsigned long long>(fair_max), spread * 100.0);
    if (c.check_fairness && spread > c.fairness_tol) {
      fail("healthy-tenant granted spread " + std::to_string(spread) +
           " exceeds tolerance " + std::to_string(c.fairness_tol));
    }
  }

  for (const serve::TenantHealthRow& h : health) {
    std::printf("tenant %llu: %s, %llu completions, %llu retries, "
                "%llu failures, %llu quarantines, %llu sheds\n",
                static_cast<unsigned long long>(h.tenant),
                serve::tenant_state_name(h.state),
                static_cast<unsigned long long>(h.completions),
                static_cast<unsigned long long>(h.retries),
                static_cast<unsigned long long>(h.failures),
                static_cast<unsigned long long>(h.quarantines),
                static_cast<unsigned long long>(h.sheds));
  }
  std::printf(
      "chaos: %llu completed (%llu retried), %llu poison-terminal, "
      "%llu shed, %llu shed-refused, %llu quarantine-rejected, "
      "%llu queue-full retries\n",
      static_cast<unsigned long long>(tally.completed),
      static_cast<unsigned long long>(tally.completed_retried),
      static_cast<unsigned long long>(tally.terminal_body_error),
      static_cast<unsigned long long>(tally.terminal_shed),
      static_cast<unsigned long long>(tally.rejected_shed),
      static_cast<unsigned long long>(tally.rejected_quarantined),
      static_cast<unsigned long long>(queue_full_retries.load()));
  std::printf(
      "counters: %llu submissions, %llu rejections, %llu retries, "
      "%llu rescues, %llu quarantines, %llu sheds\n",
      static_cast<unsigned long long>(counters.serve_submissions),
      static_cast<unsigned long long>(counters.serve_rejections),
      static_cast<unsigned long long>(counters.serve_retries),
      static_cast<unsigned long long>(counters.serve_watchdog_rescues),
      static_cast<unsigned long long>(counters.serve_quarantines),
      static_cast<unsigned long long>(counters.serve_sheds));

  if (!c.json_path.empty()) {
    std::ofstream js(c.json_path);
    if (!js) {
      std::fprintf(stderr, "cannot write %s\n", c.json_path.c_str());
      return 1;
    }
    js << "{\n  \"procs\": " << c.procs
       << ",\n  \"programs\": " << c.programs
       << ",\n  \"failures\": " << failures.size()
       << ",\n  \"completed\": " << tally.completed
       << ",\n  \"completed_retried\": " << tally.completed_retried
       << ",\n  \"terminal_body_error\": " << tally.terminal_body_error
       << ",\n  \"terminal_shed\": " << tally.terminal_shed
       << ",\n  \"rejected_shed\": " << tally.rejected_shed
       << ",\n  \"rejected_quarantined\": " << tally.rejected_quarantined
       << ",\n  \"healthy_spread\": " << spread
       << ",\n  \"serve_retries\": " << counters.serve_retries
       << ",\n  \"serve_watchdog_rescues\": "
       << counters.serve_watchdog_rescues
       << ",\n  \"serve_quarantines\": " << counters.serve_quarantines
       << ",\n  \"serve_sheds\": " << counters.serve_sheds
       << ",\n  \"tenants\": [";
    for (std::size_t i = 0; i < health.size(); ++i) {
      const serve::TenantHealthRow& h = health[i];
      js << (i ? "," : "") << "\n    {\"tenant\": " << h.tenant
         << ", \"state\": \"" << serve::tenant_state_name(h.state)
         << "\", \"completions\": " << h.completions
         << ", \"retries\": " << h.retries
         << ", \"failures\": " << h.failures
         << ", \"quarantines\": " << h.quarantines
         << ", \"sheds\": " << h.sheds << "}";
    }
    js << "\n  ]\n}\n";
    std::printf("chaos report written to %s\n", c.json_path.c_str());
  }

  if (!failures.empty()) {
    for (const Failure& f : failures) {
      std::fprintf(stderr, "FAIL: %s\n", f.what.c_str());
    }
    return 1;
  }
  std::printf("serve-chaos: OK\n");
  return 0;
}
