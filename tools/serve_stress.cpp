// serve-stress: concurrent correctness + fairness driver for the resident
// scheduler service (docs/serving.md).  N submitter threads hammer one
// serve::Service with mixed-priority, mixed-size random programs; every
// result is checked against the sequential oracle, audit violations are
// counted, and equal-priority tenants' granted-cycle totals are compared.
//
// Equal-priority tenants are given IDENTICAL seed sets (seed depends only on
// the per-tenant program index and the tenant's tier), so their total work
// is identical and the granted-cycle fairness check isolates the dispatcher:
// with every submission completing, a tier's tenants must land within
// --fairness-tol of each other.
//
//   serve-stress [--procs 8] [--submitters 16] [--programs 224] ...
//
// Exit codes: 0 all checks passed, 1 any verification/fairness failure,
// 2 usage.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <array>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "baselines/sequential.hpp"
#include "serve/service.hpp"
#include "workloads/programs.hpp"

using namespace selfsched;

namespace {

/// Deterministic per-iteration compute (same dependent recurrence as
/// RContext::work, so it cannot be vectorized or const-folded).  Every body
/// burns the same CPU, which makes a tier's granted-cycle totals dominated
/// by its identical workload rather than by sync-contention noise — without
/// it the fairness check measures scheduling luck, not the dispatcher.
constexpr u64 kBodySpinRounds = 6000;

void body_spin(u64 x) {
  for (u64 i = 0; i < kBodySpinRounds; ++i) x = x * 0xd1342543de82ef95ULL + 1;
  volatile u64 sink = x;  // keep the loop observable
  (void)sink;
}

/// Thread-safe iteration recorder (the tools-side analogue of the test
/// suite's oracle recorder): multiset of (leaf, indices-prefix, j).
struct Recorder {
  using Key = std::tuple<std::string, std::vector<i64>, i64>;

  program::BodyFactory factory() {
    return [this](const std::string& name) -> program::BodyFn {
      return [this, name](ProcId, const IndexVec& ivec, i64 j) {
        body_spin(static_cast<u64>(j) + ivec.size());
        std::vector<i64> iv(ivec.begin(), ivec.end());
        std::lock_guard lk(mu);
        seen.emplace_back(name, std::move(iv), j);
      };
    };
  }

  /// Canonical multiset, index vectors trimmed to each leaf's depth (the
  /// two engines size IndexVec differently).
  std::vector<Key> canonical(const program::NestedLoopProgram& prog) const {
    std::vector<Key> out;
    std::lock_guard lk(mu);
    out.reserve(seen.size());
    for (const auto& [name, iv, j] : seen) {
      Level depth = 0;
      for (u32 i = 0; i < prog.num_loops(); ++i) {
        if (prog.loop(i).name == name) {
          depth = prog.loop(i).depth;
          break;
        }
      }
      std::vector<i64> trimmed(
          iv.begin(), iv.begin() + std::min<std::size_t>(iv.size(), depth));
      out.emplace_back(name, std::move(trimmed), j);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  mutable std::mutex mu;
  std::vector<Key> seen;
};

/// Size/shape config as a deterministic function of the seed, so two
/// instances built from the same seed are identical programs.
workloads::RandomProgramConfig config_for(u64 seed) {
  workloads::RandomProgramConfig cfg;
  cfg.max_depth = 2 + static_cast<u32>(seed % 3);
  cfg.max_bound = 2 + static_cast<i64>(seed % 3);
  cfg.max_leaf_bound = 3 + static_cast<i64>(seed % 9);
  cfg.max_body_cost = 20 + (seed % 60);
  return cfg;
}

struct Config {
  u32 procs = 8;
  u32 submitters = 16;
  u32 programs = 224;
  u32 tenants = 8;
  u32 priorities = 2;
  u32 max_queue = 32;      // small on purpose: exercise kQueueFull + retry
  u32 max_active = 3;
  i64 slice_us = 200;
  u64 seed = 1987;
  double fairness_tol = 0.20;
  bool check_fairness = true;
  std::string json_path;
};

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options]\n"
      "  --procs N          resident worker pool size (default 8)\n"
      "  --submitters N     concurrent submitter threads (default 16)\n"
      "  --programs N       total programs, rounded up to a multiple of\n"
      "                     the tenant count (default 224)\n"
      "  --tenants N        distinct tenants (default 8)\n"
      "  --priorities N     priority tiers; tenant T runs in tier\n"
      "                     T %% priorities (default 2)\n"
      "  --max-queue N      admission queue depth; full -> retry (default "
      "32)\n"
      "  --max-active N     concurrent namespaces (default 3)\n"
      "  --slice-us N       slice budget (default 200)\n"
      "  --seed S           base RNG seed (default 1987)\n"
      "  --fairness-tol F   max (max-min)/max granted spread within a tier\n"
      "                     (default 0.20)\n"
      "  --no-fairness      skip the fairness assertion (report only)\n"
      "  --json FILE        write the per-tenant fairness report as JSON\n",
      argv0);
}

struct Failure {
  std::string what;
};

}  // namespace

int main(int argc, char** argv) {
  Config c;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], stdout);
      return 0;
    } else if (arg == "--procs") {
      c.procs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--submitters") {
      c.submitters = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--programs") {
      c.programs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--tenants") {
      c.tenants = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--priorities") {
      c.priorities = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-queue") {
      c.max_queue = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-active") {
      c.max_active = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--slice-us") {
      c.slice_us = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--seed") {
      c.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fairness-tol") {
      c.fairness_tol = std::strtod(next(), nullptr);
    } else if (arg == "--no-fairness") {
      c.check_fairness = false;
    } else if (arg == "--json") {
      c.json_path = next();
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (c.procs < 1 || c.submitters < 1 || c.tenants < 1 || c.priorities < 1) {
    std::fprintf(stderr, "counts must be >= 1\n");
    return 2;
  }
  // Equal per-tenant load: round program count up to a tenant multiple.
  c.programs = ((c.programs + c.tenants - 1) / c.tenants) * c.tenants;

  serve::ServeOptions sopts;
  sopts.priorities = c.priorities;
  sopts.max_queue_depth = c.max_queue;
  sopts.max_tenants = c.tenants;
  sopts.max_active = c.max_active;
  sopts.slice_us = c.slice_us;
  serve::Service svc(c.procs, sopts);

  std::mutex fail_mu;
  std::vector<Failure> failures;
  std::vector<std::array<Cycles, exec::kNumPhases>> tenant_phases(
      c.tenants, std::array<Cycles, exec::kNumPhases>{});
  std::atomic<u64> verified{0};
  std::atomic<u64> queue_full_retries{0};
  auto fail = [&](std::string what) {
    std::lock_guard lk(fail_mu);
    failures.push_back({std::move(what)});
  };

  // A submission in flight: the served program instance must stay alive
  // (its recorder is captured by the bodies) until the result is verified.
  struct InFlight {
    u64 seed;
    u64 tenant;
    std::unique_ptr<Recorder> rec;
    std::shared_ptr<const program::NestedLoopProgram> prog;
    serve::Handle handle;
  };

  auto verify = [&](InFlight& f) {
    const runtime::RunResult r = f.handle.await();
    if (r.failure.has_value()) {
      fail("seed " + std::to_string(f.seed) + ": unexpected failure: " +
           r.failure->summary());
      return;
    }
    if (r.audit_violations != 0) {
      fail("seed " + std::to_string(f.seed) + ": " +
           std::to_string(r.audit_violations) + " audit violations:\n" +
           r.audit_report);
      return;
    }
    // Sequential oracle: an identical instance executed in program order.
    Recorder oracle;
    const program::NestedLoopProgram serial =
        workloads::random_program(f.seed, config_for(f.seed),
                                  oracle.factory());
    baselines::run_sequential(serial, /*default_body_cost=*/1,
                              /*call_bodies=*/true);
    if (f.rec->canonical(*f.prog) != oracle.canonical(serial)) {
      fail("seed " + std::to_string(f.seed) +
           ": iteration multiset diverges from the sequential oracle");
      return;
    }
    {
      std::lock_guard lk(fail_mu);
      for (u32 p = 0; p < exec::kNumPhases; ++p) {
        tenant_phases[f.tenant][p] += r.total.phase_cycles[p];
      }
    }
    verified.fetch_add(1, std::memory_order_relaxed);
  };

  auto submitter = [&](u32 sid) {
    std::deque<InFlight> window;
    for (u32 idx = sid; idx < c.programs; idx += c.submitters) {
      const u64 tenant = idx % c.tenants;
      const u64 k = idx / c.tenants;  // per-tenant program index
      // Seed depends on (k, tier) only -> same-tier tenants get identical
      // program sets, making granted-cycle totals directly comparable.
      const u64 seed =
          c.seed + k * c.priorities + (tenant % c.priorities);
      InFlight f;
      f.seed = seed;
      f.tenant = tenant;
      f.rec = std::make_unique<Recorder>();
      f.prog = std::make_shared<const program::NestedLoopProgram>(
          workloads::random_program(seed, config_for(seed),
                                    f.rec->factory()));
      serve::SubmitOptions s;
      s.tenant = tenant;
      s.priority = static_cast<u32>(tenant % c.priorities);
      s.sched.audit = true;
      s.sched.default_body_cost = 1;
      for (;;) {
        const serve::SubmitOutcome out = svc.submit(f.prog, s);
        if (out.accepted()) {
          f.handle = out.handle;
          break;
        }
        if (out.status != serve::SubmitStatus::kQueueFull) {
          fail("seed " + std::to_string(seed) + ": rejected (" +
               serve::submit_status_name(out.status) + ")");
          break;
        }
        queue_full_retries.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (!f.handle.valid()) continue;
      window.push_back(std::move(f));
      if (window.size() >= 4) {  // bounded in-flight set per submitter
        verify(window.front());
        window.pop_front();
      }
    }
    while (!window.empty()) {
      verify(window.front());
      window.pop_front();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(c.submitters);
  for (u32 s = 0; s < c.submitters; ++s) threads.emplace_back(submitter, s);
  for (std::thread& t : threads) t.join();
  svc.stop();

  const std::vector<runtime::TenantStats> tenants = svc.tenant_snapshot();
  const trace::Counters counters = svc.counters();

  // Fairness: within each tier, total granted worker time must be level.
  struct TierSpread {
    u32 priority;
    Cycles min_granted = std::numeric_limits<Cycles>::max();
    Cycles max_granted = 0;
    u32 tenants = 0;
  };
  std::vector<TierSpread> tiers(c.priorities);
  for (u32 p = 0; p < c.priorities; ++p) tiers[p].priority = p;
  for (const runtime::TenantStats& t : tenants) {
    TierSpread& tier = tiers[t.priority];
    tier.min_granted = std::min(tier.min_granted, t.granted);
    tier.max_granted = std::max(tier.max_granted, t.granted);
    tier.tenants++;
  }
  for (const runtime::TenantStats& t : tenants) {
    std::printf("tenant %llu phases:",
                static_cast<unsigned long long>(t.tenant));
    for (u32 p = 0; p < exec::kNumPhases; ++p) {
      std::printf(" %s=%lld",
                  exec::phase_name(static_cast<exec::Phase>(p)),
                  static_cast<long long>(tenant_phases[t.tenant][p]));
    }
    std::printf("\n");
  }
  for (const TierSpread& tier : tiers) {
    if (tier.tenants < 2 || tier.max_granted == 0) continue;
    const double spread =
        static_cast<double>(tier.max_granted - tier.min_granted) /
        static_cast<double>(tier.max_granted);
    std::printf("tier %u: %u tenants, granted [%llu, %llu], spread %.1f%%\n",
                tier.priority, tier.tenants,
                static_cast<unsigned long long>(tier.min_granted),
                static_cast<unsigned long long>(tier.max_granted),
                spread * 100.0);
    if (c.check_fairness && spread > c.fairness_tol) {
      fail("tier " + std::to_string(tier.priority) +
           ": granted-cycle spread " + std::to_string(spread) +
           " exceeds tolerance " + std::to_string(c.fairness_tol));
    }
  }

  std::printf("verified %llu/%u programs, %llu queue-full retries, "
              "%llu submissions, %llu rejections, %llu preemptions\n",
              static_cast<unsigned long long>(verified.load()), c.programs,
              static_cast<unsigned long long>(queue_full_retries.load()),
              static_cast<unsigned long long>(counters.serve_submissions),
              static_cast<unsigned long long>(counters.serve_rejections),
              static_cast<unsigned long long>(counters.serve_preemptions));

  if (!c.json_path.empty()) {
    std::ofstream js(c.json_path);
    if (!js) {
      std::fprintf(stderr, "cannot write %s\n", c.json_path.c_str());
      return 1;
    }
    js << "{\n  \"procs\": " << c.procs
       << ",\n  \"submitters\": " << c.submitters
       << ",\n  \"programs\": " << c.programs
       << ",\n  \"verified\": " << verified.load()
       << ",\n  \"failures\": " << failures.size()
       << ",\n  \"serve_submissions\": " << counters.serve_submissions
       << ",\n  \"serve_rejections\": " << counters.serve_rejections
       << ",\n  \"serve_preemptions\": " << counters.serve_preemptions
       << ",\n  \"tenants\": [";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const runtime::TenantStats& t = tenants[i];
      js << (i ? "," : "") << "\n    {\"tenant\": " << t.tenant
         << ", \"priority\": " << t.priority
         << ", \"submissions\": " << t.submissions
         << ", \"queue_wait\": " << t.queue_wait
         << ", \"granted\": " << t.granted << ", \"slices\": " << t.slices
         << ", \"preemptions\": " << t.preemptions << "}";
    }
    js << "\n  ]\n}\n";
    std::printf("fairness report written to %s\n", c.json_path.c_str());
  }

  if (!failures.empty()) {
    for (const Failure& f : failures) {
      std::fprintf(stderr, "FAIL: %s\n", f.what.c_str());
    }
    return 1;
  }
  std::printf("serve-stress: OK\n");
  return 0;
}
