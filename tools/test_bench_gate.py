#!/usr/bin/env python3
"""Unit tests for the bench_gate comparison/policy logic (no bench runs).

Registered with ctest (label: unit) from tools/CMakeLists.txt; also runs
standalone: python3 tools/test_bench_gate.py
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_gate  # noqa: E402


def metric(name, value, better="less", gate=True, **extra):
    m = {"name": name, "value": value, "better": better,
         "deterministic": True, "gate": gate}
    m.update(extra)
    return m


def doc(metrics, max_procs=8):
    return {"schema": bench_gate.SCHEMA, "max_procs": max_procs,
            "metrics": metrics}


class CompareTest(unittest.TestCase):
    def test_within_tolerance_is_clean(self):
        base = doc([metric("m/a", 100.0), metric("m/b", 50.0, better="more")])
        cur = doc([metric("m/a", 105.0), metric("m/b", 49.0, better="more")])
        regs, imps, compared, ob, oc, bad = bench_gate.compare(base, cur, 0.15)
        self.assertEqual((regs, imps, ob, oc, bad), ([], [], [], [], []))
        self.assertEqual(compared, 2)

    def test_less_metric_regresses_upward(self):
        base = doc([metric("m/a", 100.0)])
        cur = doc([metric("m/a", 130.0)])
        regs, imps, *_ = bench_gate.compare(base, cur, 0.15)
        self.assertEqual([r[0] for r in regs], ["m/a"])
        self.assertEqual(imps, [])

    def test_more_metric_regresses_downward(self):
        base = doc([metric("m/a", 100.0, better="more")])
        cur = doc([metric("m/a", 70.0, better="more")])
        regs, imps, *_ = bench_gate.compare(base, cur, 0.15)
        self.assertEqual([r[0] for r in regs], ["m/a"])

    def test_improvement_is_reported_not_failed(self):
        base = doc([metric("m/a", 100.0)])
        cur = doc([metric("m/a", 50.0)])
        regs, imps, *_ = bench_gate.compare(base, cur, 0.15)
        self.assertEqual(regs, [])
        self.assertEqual([i[0] for i in imps], ["m/a"])

    def test_ungated_metrics_are_ignored(self):
        base = doc([metric("m/wall", 10.0, gate=False)])
        cur = doc([metric("m/wall", 99.0, gate=False)])
        regs, imps, compared, *_ = bench_gate.compare(base, cur, 0.15)
        self.assertEqual((regs, imps, compared), ([], [], 0))

    def test_malformed_metric_is_named_not_keyerror(self):
        base = doc([{"name": "m/nobetter", "value": 1.0, "gate": True},
                    metric("m/ok", 1.0)])
        cur = doc([metric("m/nobetter", 1.0), metric("m/ok", 1.0)])
        regs, imps, compared, ob, oc, bad = bench_gate.compare(base, cur, 0.15)
        self.assertEqual(bad, [("m/nobetter", ["better"])])
        self.assertEqual(compared, 1)  # the healthy metric still compares

    def test_zero_baseline_value_is_skipped(self):
        base = doc([metric("m/z", 0.0)])
        cur = doc([metric("m/z", 5.0)])
        regs, imps, *_ = bench_gate.compare(base, cur, 0.15)
        self.assertEqual((regs, imps), ([], []))


class EvaluateTest(unittest.TestCase):
    def test_clean_run_is_ok(self):
        base = doc([metric("m/a", 100.0)])
        cur = doc([metric("m/a", 101.0)])
        ok, lines = bench_gate.evaluate(base, cur, 0.15)
        self.assertTrue(ok)
        self.assertIn("bench_gate: OK", lines[-1])

    def test_missing_metric_same_sweep_fails_with_name(self):
        base = doc([metric("m/kept", 1.0), metric("m/lost", 2.0)])
        cur = doc([metric("m/kept", 1.0)])
        ok, lines = bench_gate.evaluate(base, cur, 0.15)
        self.assertFalse(ok)
        text = "\n".join(lines)
        self.assertIn("FAIL", text)
        self.assertIn("m/lost", text)

    def test_missing_metric_smoke_sweep_is_note(self):
        base = doc([metric("m/p8", 1.0), metric("m/p4", 2.0)], max_procs=8)
        cur = doc([metric("m/p4", 2.0)], max_procs=4)
        ok, lines = bench_gate.evaluate(base, cur, 0.15)
        self.assertTrue(ok)
        self.assertIn("smoke sweep?", "\n".join(lines))

    def test_allow_missing_waives_the_failure(self):
        base = doc([metric("m/kept", 1.0), metric("m/lost", 2.0)])
        cur = doc([metric("m/kept", 1.0)])
        ok, lines = bench_gate.evaluate(base, cur, 0.15, allow_missing=True)
        self.assertTrue(ok)
        self.assertIn("--allow-missing", "\n".join(lines))

    def test_regression_fails_and_names_the_metric(self):
        base = doc([metric("m/slow", 100.0)])
        cur = doc([metric("m/slow", 200.0)])
        ok, lines = bench_gate.evaluate(base, cur, 0.15)
        self.assertFalse(ok)
        text = "\n".join(lines)
        self.assertIn("REGRESSED m/slow", text)
        self.assertIn("FAIL", text)

    def test_malformed_metric_fails_and_names_the_key(self):
        base = doc([{"name": "m/bad", "gate": True, "better": "less"}])
        cur = doc([metric("m/bad", 1.0)])
        ok, lines = bench_gate.evaluate(base, cur, 0.15)
        self.assertFalse(ok)
        text = "\n".join(lines)
        self.assertIn("MALFORMED m/bad", text)
        self.assertIn("value", text)

    def test_new_metric_in_run_is_a_note(self):
        base = doc([metric("m/a", 1.0)])
        cur = doc([metric("m/a", 1.0), metric("m/new", 3.0)])
        ok, lines = bench_gate.evaluate(base, cur, 0.15)
        self.assertTrue(ok)
        self.assertIn("refresh the baseline", "\n".join(lines))


if __name__ == "__main__":
    unittest.main()
